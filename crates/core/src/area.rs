//! The component area model (Table 4, 65 nm).
//!
//! Anchored to the paper's layout: 4.86 mm² total at 65 nm, split into
//! NFU 0.66 mm² (64 PEs), NBin/NBout 1.12 mm² each (64 KB), SB 1.65 mm²
//! (128 KB — the §6 "cost of 128 KB SRAM is moderate: 1.65 mm²" figure),
//! and IB 0.31 mm² (32 KB). Components scale linearly in their capacity /
//! PE count, which is how we regenerate Table 4's area column and explore
//! other design points.

use crate::config::AcceleratorConfig;
use crate::energy::WeightPrecision;
use core::fmt;
use shidiannao_faults::SramProtection;

/// Per-component silicon area in mm².
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaReport {
    /// PE mesh + ALU.
    pub nfu_mm2: f64,
    /// Input-neuron buffer.
    pub nbin_mm2: f64,
    /// Output-neuron buffer.
    pub nbout_mm2: f64,
    /// Synapse buffer.
    pub sb_mm2: f64,
    /// Instruction buffer + decoder.
    pub ib_mm2: f64,
}

/// NFU area per PE: 0.66 mm² / 64 PEs (Table 4).
pub const NFU_MM2_PER_PE: f64 = 0.66 / 64.0;
/// NB area per KB: 1.12 mm² / 64 KB (Table 4).
pub const NB_MM2_PER_KB: f64 = 1.12 / 64.0;
/// SB area per KB: 1.65 mm² / 128 KB (Table 4, §6).
pub const SB_MM2_PER_KB: f64 = 1.65 / 128.0;
/// IB area per KB: 0.31 mm² / 32 KB (Table 4).
pub const IB_MM2_PER_KB: f64 = 0.31 / 32.0;

impl AreaReport {
    /// Total accelerator area.
    pub fn total_mm2(&self) -> f64 {
        self.nfu_mm2 + self.nbin_mm2 + self.nbout_mm2 + self.sb_mm2 + self.ib_mm2
    }

    /// Component shares of the total, in Table 4 order (NFU, NBin, NBout,
    /// SB, IB), as fractions.
    pub fn shares(&self) -> [f64; 5] {
        let t = self.total_mm2();
        [
            self.nfu_mm2 / t,
            self.nbin_mm2 / t,
            self.nbout_mm2 / t,
            self.sb_mm2 / t,
            self.ib_mm2 / t,
        ]
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.2} mm² (NFU {:.2}, NBin {:.2}, NBout {:.2}, SB {:.2}, IB {:.2})",
            self.total_mm2(),
            self.nfu_mm2,
            self.nbin_mm2,
            self.nbout_mm2,
            self.sb_mm2,
            self.ib_mm2
        )
    }
}

/// Estimates the silicon area of a configuration at 65 nm.
pub fn area_of(cfg: &AcceleratorConfig) -> AreaReport {
    let kb = |bytes: usize| bytes as f64 / 1024.0;
    AreaReport {
        nfu_mm2: NFU_MM2_PER_PE * cfg.pe_count() as f64,
        nbin_mm2: NB_MM2_PER_KB * kb(cfg.nbin_bytes),
        nbout_mm2: NB_MM2_PER_KB * kb(cfg.nbout_bytes),
        sb_mm2: SB_MM2_PER_KB * kb(cfg.sb_bytes),
        ib_mm2: IB_MM2_PER_KB * kb(cfg.ib_bytes),
    }
}

/// Estimates the silicon area with SRAM protection overheads: each SRAM
/// macro grows by the check-bit storage overhead (parity 17/16, SECDED
/// 22/16 for 16-bit words); the NFU is unchanged. With
/// `SramProtection::None` this is exactly [`area_of`].
pub fn area_with_protection(cfg: &AcceleratorConfig, protection: SramProtection) -> AreaReport {
    let base = area_of(cfg);
    let storage = protection.storage_overhead();
    AreaReport {
        nfu_mm2: base.nfu_mm2,
        nbin_mm2: base.nbin_mm2 * storage,
        nbout_mm2: base.nbout_mm2 * storage,
        sb_mm2: base.sb_mm2 * storage,
        ib_mm2: base.ib_mm2 * storage,
    }
}

/// Estimates the silicon area with both SRAM protection and a synaptic
/// weight precision applied: the SB shrinks to the packed word width
/// ([`WeightPrecision::sb_scale`]) before the check-bit overhead grows
/// it back, and the NFU multiplier array shrinks by the same PE factor
/// the energy model uses ([`WeightPrecision::pe_scale`]) — only the
/// multiplier share of the PE, taken as half of the NFU area, scales;
/// accumulators, FIFOs, and the ALU stay full-width. `W16` is exactly
/// [`area_with_protection`].
pub fn area_with_precision(
    cfg: &AcceleratorConfig,
    protection: SramProtection,
    precision: WeightPrecision,
) -> AreaReport {
    let base = area_with_protection(cfg, protection);
    let mul_share = 0.5;
    AreaReport {
        nfu_mm2: base.nfu_mm2 * (1.0 - mul_share + mul_share * precision.pe_scale()),
        sb_mm2: base.sb_mm2 * precision.sb_scale(),
        ..base
    }
}

/// Renders a Fig. 17 style floorplan sketch: component rectangles whose
/// areas are proportional to the model's mm², arranged like the paper's
/// layout (SB across the top, NBin/NBout flanking the NFU, IB at the
/// bottom).
pub fn floorplan_ascii(cfg: &AcceleratorConfig) -> String {
    let a = area_of(cfg);
    let total = a.total_mm2();
    let width = 40usize;
    // Rows proportional to area within a fixed 20-row die sketch.
    let rows_of = |mm2: f64| ((mm2 / total * 20.0).round() as usize).max(1);
    let band = |label: &str, mm2: f64| {
        let rows = rows_of(mm2);
        let mut out = String::new();
        for r in 0..rows {
            let text = if r == rows / 2 {
                format!("{label} {mm2:.2} mm2")
            } else {
                String::new()
            };
            out += &format!(
                "|{text:^width$}|
"
            );
        }
        out
    };
    let mut out = format!(
        "+{}+
",
        "-".repeat(width)
    );
    out += &band("SB", a.sb_mm2);
    out += &format!(
        "+{}+
",
        "-".repeat(width)
    );
    // Middle band: NBin | NFU | NBout, proportional columns.
    let mid = a.nbin_mm2 + a.nfu_mm2 + a.nbout_mm2;
    let cols = |mm2: f64| ((mm2 / mid * (width - 2) as f64).round() as usize).max(3);
    let (c1, c3) = (cols(a.nbin_mm2), cols(a.nbout_mm2));
    let c2 = (width - 2).saturating_sub(c1 + c3).max(3);
    let mid_rows = rows_of(mid);
    for r in 0..mid_rows {
        let (l, m, rr) = if r == mid_rows / 2 {
            ("NBin".to_string(), "NFU".to_string(), "NBout".to_string())
        } else {
            (String::new(), String::new(), String::new())
        };
        out += &format!(
            "|{l:^c1$}|{m:^c2$}|{rr:^c3$}|
"
        );
    }
    out += &format!(
        "+{}+
",
        "-".repeat(width)
    );
    out += &band("IB", a.ib_mm2);
    out += &format!(
        "+{}+
",
        "-".repeat(width)
    );
    out += &format!(
        "total: {total:.2} mm2 at 65 nm
"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_reproduces_table4_area() {
        let a = area_of(&AcceleratorConfig::paper());
        assert!((a.total_mm2() - 4.86).abs() < 0.001, "{}", a.total_mm2());
        assert!((a.nfu_mm2 - 0.66).abs() < 1e-9);
        assert!((a.nbin_mm2 - 1.12).abs() < 1e-9);
        assert!((a.sb_mm2 - 1.65).abs() < 1e-9);
        assert!((a.ib_mm2 - 0.31).abs() < 1e-9);
    }

    #[test]
    fn shares_match_table4_percentages() {
        let a = area_of(&AcceleratorConfig::paper());
        let s = a.shares();
        assert!((s[0] - 0.1358).abs() < 0.001); // NFU 13.58 %
        assert!((s[3] - 0.3395).abs() < 0.001); // SB 33.95 %
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_design_point() {
        let small = area_of(&AcceleratorConfig::with_pe_grid(4, 4));
        let big = area_of(&AcceleratorConfig::paper());
        assert!(small.nfu_mm2 < big.nfu_mm2);
        assert_eq!(small.sb_mm2, big.sb_mm2);
    }

    #[test]
    fn protection_grows_srams_but_not_the_nfu() {
        let cfg = AcceleratorConfig::paper();
        let base = area_of(&cfg);
        assert_eq!(area_with_protection(&cfg, SramProtection::None), base);
        let secded = area_with_protection(&cfg, SramProtection::Secded);
        assert_eq!(secded.nfu_mm2, base.nfu_mm2);
        assert!((secded.sb_mm2 / base.sb_mm2 - 22.0 / 16.0).abs() < 1e-12);
        let parity = area_with_protection(&cfg, SramProtection::Parity);
        assert!(parity.total_mm2() > base.total_mm2());
        assert!(parity.total_mm2() < secded.total_mm2());
    }

    #[test]
    fn precision_shrinks_sb_and_multipliers_only() {
        let cfg = AcceleratorConfig::paper();
        let base = area_with_protection(&cfg, SramProtection::None);
        assert_eq!(
            area_with_precision(&cfg, SramProtection::None, WeightPrecision::W16),
            base
        );
        let w1 = area_with_precision(&cfg, SramProtection::None, WeightPrecision::W1);
        assert!((w1.sb_mm2 / base.sb_mm2 - 1.0 / 16.0).abs() < 1e-12);
        assert!((w1.nfu_mm2 / base.nfu_mm2 - 0.5625).abs() < 1e-12);
        assert_eq!(w1.nbin_mm2, base.nbin_mm2);
        assert_eq!(w1.ib_mm2, base.ib_mm2);
        let w2 = area_with_precision(&cfg, SramProtection::None, WeightPrecision::W2);
        assert!(w2.total_mm2() > w1.total_mm2());
        assert!(w2.total_mm2() < base.total_mm2());
    }

    #[test]
    fn display_mentions_total() {
        let a = area_of(&AcceleratorConfig::paper());
        assert!(a.to_string().contains("4.86"));
    }

    #[test]
    fn floorplan_sketch_names_every_component() {
        let plan = floorplan_ascii(&AcceleratorConfig::paper());
        for name in ["SB", "NFU", "NBin", "NBout", "IB"] {
            assert!(plan.contains(name), "missing {name}\n{plan}");
        }
        assert!(plan.contains("total: 4.86 mm2"));
    }
}
