//! Processing-element state (Fig. 6), stored structure-of-arrays.
//!
//! The mesh's architectural state — accumulators, comparator registers,
//! output registers, and the FIFO-H/FIFO-V shift registers — lives in
//! [`PeArray`]: one flat array per register class, indexed by PE. A
//! window-sweep cycle is then a branch-light loop over contiguous arrays
//! instead of a pointer chase through per-PE `VecDeque`s. The per-PE view
//! API of the original array-of-structs design survives as [`PeRef`] /
//! [`PeMut`] accessor shims (what tests and the fault machinery use).

use shidiannao_faults::{PeStuck, PeStuckTarget};
use shidiannao_fixed::{Accum, Fx};

/// Structure-of-arrays storage for `n` processing elements.
///
/// Per Fig. 6, each PE holds a multiplier + adder (the widened [`Accum`]),
/// a comparator register (max pooling), an output register, and the two
/// inter-PE FIFOs:
///
/// * **FIFO-H** buffers every input neuron the PE receives; the *left*
///   neighbour pops it `Sx` cycles later while sweeping a kernel row,
/// * **FIFO-V** buffers the neurons received at the first column of a
///   kernel row (`kx = 0`); the *upper* neighbour pops it `Sy` kernel rows
///   later.
///
/// FIFO storage is a flat slab of `n × cap` words; PE `i`'s queue occupies
/// `[i·cap, i·cap + len_i)` oldest-first. Depths are tiny (`Sx`/`Sy`,
/// almost always 1–2), so shifting on pop beats ring indexing. Peak
/// occupancies are recorded so tests can verify the §5.1 sizing.
#[derive(Clone, Debug)]
pub(crate) struct PeArray {
    n: usize,
    acc: Vec<Accum>,
    cmp: Vec<Fx>,
    out: Vec<Fx>,
    fifo_h: Vec<Fx>,
    fifo_v: Vec<Fx>,
    h_len: Vec<u32>,
    v_len: Vec<u32>,
    h_peak: Vec<u32>,
    v_peak: Vec<u32>,
    h_depth: usize,
    v_depth: usize,
    h_cap: usize,
    v_cap: usize,
    // Hardware stuck-at faults: survive reset() (a property of the
    // silicon, not of the architectural state).
    stuck: Vec<Option<PeStuck>>,
    stuck_count: usize,
}

impl PeArray {
    /// Creates `n` idle PEs in their power-on state.
    pub(crate) fn new(n: usize) -> PeArray {
        PeArray {
            n,
            acc: vec![Accum::new(); n],
            cmp: vec![Fx::MIN; n],
            out: vec![Fx::ZERO; n],
            fifo_h: vec![Fx::ZERO; n],
            fifo_v: vec![Fx::ZERO; n],
            h_len: vec![0; n],
            v_len: vec![0; n],
            h_peak: vec![0; n],
            v_peak: vec![0; n],
            h_depth: 1,
            v_depth: 1,
            h_cap: 1,
            v_cap: 1,
            stuck: vec![None; n],
            stuck_count: 0,
        }
    }

    /// PE count.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Restores every PE to its power-on state, keeping slab capacities
    /// (capacity is not architectural state) and any stuck-at faults.
    pub(crate) fn reset(&mut self) {
        self.acc.fill(Accum::new());
        self.cmp.fill(Fx::MIN);
        self.out.fill(Fx::ZERO);
        self.h_len.fill(0);
        self.v_len.fill(0);
        self.h_peak.fill(0);
        self.v_peak.fill(0);
        self.h_depth = 1;
        self.v_depth = 1;
    }

    /// `true` when any PE carries a stuck-at fault (disables the fast
    /// sweep kernel).
    #[inline]
    pub(crate) fn any_stuck(&self) -> bool {
        self.stuck_count != 0
    }

    pub(crate) fn set_stuck(&mut self, i: usize, fault: Option<PeStuck>) {
        match (self.stuck[i].is_some(), fault.is_some()) {
            (false, true) => self.stuck_count += 1,
            (true, false) => self.stuck_count -= 1,
            _ => {}
        }
        self.stuck[i] = fault;
    }

    #[inline]
    pub(crate) fn stuck(&self, i: usize) -> Option<PeStuck> {
        self.stuck[i]
    }

    #[inline]
    fn stuck_output(&self, i: usize, v: Fx) -> Fx {
        match self.stuck[i] {
            Some(f) if f.target == PeStuckTarget::Output => f.apply(v),
            _ => v,
        }
    }

    #[inline]
    fn stuck_fifo(&self, i: usize, v: Fx) -> Fx {
        match self.stuck[i] {
            Some(f) if f.target == PeStuckTarget::Fifo => f.apply(v),
            _ => v,
        }
    }

    // ----- datapath registers ----------------------------------------

    /// Begins a new output neuron for MAC/add work, pre-loading the bias.
    #[inline]
    pub(crate) fn reset_accumulator(&mut self, i: usize, bias: Fx) {
        self.acc[i] = Accum::from_fx(bias);
    }

    /// Begins a new output neuron for max pooling.
    #[inline]
    pub(crate) fn reset_comparator(&mut self, i: usize) {
        self.cmp[i] = Fx::MIN;
    }

    /// One multiply-accumulate cycle.
    #[inline]
    pub(crate) fn mac(&mut self, i: usize, neuron: Fx, synapse: Fx) {
        self.acc[i].mac(neuron, synapse);
    }

    /// One accumulate-only cycle (average pooling, matrix addition).
    #[inline]
    pub(crate) fn add(&mut self, i: usize, neuron: Fx) {
        self.acc[i].add_fx(neuron);
    }

    /// One comparison cycle (max pooling).
    #[inline]
    pub(crate) fn compare(&mut self, i: usize, neuron: Fx) {
        self.cmp[i] = self.cmp[i].max(neuron);
    }

    /// Reads an accumulator through the PE output path (truncate +
    /// saturate, then through any stuck-at output fault).
    #[inline]
    pub(crate) fn accumulator(&self, i: usize) -> Fx {
        self.stuck_output(i, self.acc[i].to_fx())
    }

    /// Divides an accumulated sum by `count` (average pooling read-out).
    #[inline]
    pub(crate) fn accumulator_mean(&self, i: usize, count: usize) -> Fx {
        self.stuck_output(i, self.acc[i].mean(count))
    }

    /// A comparator register (max pooling result).
    #[inline]
    pub(crate) fn comparator(&self, i: usize) -> Fx {
        self.stuck_output(i, self.cmp[i])
    }

    /// Direct accumulator access for the analytic fast path: the whole
    /// window reduction runs as one per-PE loop, so the per-cycle
    /// dispatch through [`PeArray::mac`] is bypassed. Fault handling is
    /// moot — the fast kernel is only selected when no PE carries a
    /// stuck-at fault.
    #[inline]
    pub(crate) fn acc_mut(&mut self, i: usize) -> &mut Accum {
        &mut self.acc[i]
    }

    /// Direct comparator access (see [`PeArray::acc_mut`]).
    #[inline]
    pub(crate) fn cmp_mut(&mut self, i: usize) -> &mut Fx {
        &mut self.cmp[i]
    }

    /// A contiguous accumulator row — PEs `(0..len, py)` of a mesh
    /// `px_stride` wide — for the vectorized window reduction: the SoA
    /// layout keeps a mesh row adjacent, so chunked lane kernels can
    /// fold partial sums into the whole row at once.
    #[inline]
    pub(crate) fn acc_row_mut(&mut self, px_stride: usize, py: usize, len: usize) -> &mut [Accum] {
        let base = py * px_stride;
        &mut self.acc[base..base + len]
    }

    /// A contiguous comparator row (see [`PeArray::acc_row_mut`]).
    #[inline]
    pub(crate) fn cmp_row_mut(&mut self, px_stride: usize, py: usize, len: usize) -> &mut [Fx] {
        let base = py * px_stride;
        &mut self.cmp[base..base + len]
    }

    /// Folds an analytically derived per-pass peak FIFO occupancy into
    /// the peak tracking. The cycle-accurate sweep reaches the same peak
    /// on every active PE, and [`PeArray::max_fifo_peaks`] reports a
    /// global maximum, so carrying the pass peak in PE 0's slot (always
    /// active — blocks anchor at the mesh origin) preserves the exact
    /// cumulative-since-reset semantics the instrumented path produces.
    #[inline]
    pub(crate) fn note_fifo_peaks(&mut self, h: u32, v: u32) {
        self.h_peak[0] = self.h_peak[0].max(h);
        self.v_peak[0] = self.v_peak[0].max(v);
    }

    #[inline]
    pub(crate) fn latch_output(&mut self, i: usize, v: Fx) {
        self.out[i] = v;
    }

    #[inline]
    pub(crate) fn output(&self, i: usize) -> Fx {
        self.out[i]
    }

    // ----- FIFOs ------------------------------------------------------

    /// Configures the FIFO depths for the coming window pass: `Sx` slots
    /// for FIFO-H and `Sy` for FIFO-V (the §5.1 sizing). The FIFOs behave
    /// as shift registers: pushing into a full FIFO silently evicts the
    /// oldest entry — the value a left/upper neighbour would have consumed
    /// if one existed (edge PEs push like everyone else, Fig. 13).
    ///
    /// # Panics
    ///
    /// Panics if a depth is zero.
    pub(crate) fn set_fifo_depths(&mut self, h_depth: usize, v_depth: usize) {
        assert!(h_depth > 0 && v_depth > 0, "FIFO depths must be non-zero");
        self.h_depth = h_depth;
        self.v_depth = v_depth;
        if h_depth > self.h_cap {
            self.grow_h(h_depth);
        }
        if v_depth > self.v_cap {
            self.grow_v(v_depth);
        }
    }

    fn grow_h(&mut self, new_cap: usize) {
        let mut slab = vec![Fx::ZERO; self.n * new_cap];
        for i in 0..self.n {
            let len = self.h_len[i] as usize;
            slab[i * new_cap..i * new_cap + len]
                .copy_from_slice(&self.fifo_h[i * self.h_cap..i * self.h_cap + len]);
        }
        self.fifo_h = slab;
        self.h_cap = new_cap;
    }

    fn grow_v(&mut self, new_cap: usize) {
        let mut slab = vec![Fx::ZERO; self.n * new_cap];
        for i in 0..self.n {
            let len = self.v_len[i] as usize;
            slab[i * new_cap..i * new_cap + len]
                .copy_from_slice(&self.fifo_v[i * self.v_cap..i * self.v_cap + len]);
        }
        self.fifo_v = slab;
        self.v_cap = new_cap;
    }

    /// Pushes a received neuron into PE `i`'s FIFO-H (every received
    /// value).
    #[inline]
    pub(crate) fn push_h(&mut self, i: usize, v: Fx) {
        let len = self.h_len[i] as usize;
        if len == self.h_depth {
            // Shift-register eviction: drop the oldest, length stays at
            // depth (peak already recorded it).
            let base = i * self.h_cap;
            self.fifo_h.copy_within(base + 1..base + len, base);
            self.fifo_h[base + len - 1] = v;
            return;
        }
        if len == self.h_cap {
            // Depth was shrunk below the live length without a clear;
            // keep the legacy unbounded-growth semantics.
            self.grow_h(len + 1);
        }
        self.fifo_h[i * self.h_cap + len] = v;
        let new_len = (len + 1) as u32;
        self.h_len[i] = new_len;
        if new_len > self.h_peak[i] {
            self.h_peak[i] = new_len;
        }
    }

    /// Pushes a received neuron into PE `i`'s FIFO-V (first-column values
    /// only).
    #[inline]
    pub(crate) fn push_v(&mut self, i: usize, v: Fx) {
        let len = self.v_len[i] as usize;
        if len == self.v_depth {
            let base = i * self.v_cap;
            self.fifo_v.copy_within(base + 1..base + len, base);
            self.fifo_v[base + len - 1] = v;
            return;
        }
        if len == self.v_cap {
            self.grow_v(len + 1);
        }
        self.fifo_v[i * self.v_cap + len] = v;
        let new_len = (len + 1) as u32;
        self.v_len[i] = new_len;
        if new_len > self.v_peak[i] {
            self.v_peak[i] = new_len;
        }
    }

    /// Pops the oldest FIFO-H entry of PE `i` — called on behalf of its
    /// left neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty (a scheduling bug: the propagation
    /// schedule guarantees the value was pushed `Sx` cycles earlier).
    #[inline]
    pub(crate) fn pop_h(&mut self, i: usize) -> Fx {
        let len = self.h_len[i] as usize;
        assert!(len > 0, "FIFO-H underflow");
        let base = i * self.h_cap;
        let v = self.fifo_h[base];
        self.fifo_h.copy_within(base + 1..base + len, base);
        self.h_len[i] = (len - 1) as u32;
        self.stuck_fifo(i, v)
    }

    /// Pops the oldest FIFO-V entry of PE `i` — called on behalf of its
    /// upper neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty.
    #[inline]
    pub(crate) fn pop_v(&mut self, i: usize) -> Fx {
        let len = self.v_len[i] as usize;
        assert!(len > 0, "FIFO-V underflow");
        let base = i * self.v_cap;
        let v = self.fifo_v[base];
        self.fifo_v.copy_within(base + 1..base + len, base);
        self.v_len[i] = (len - 1) as u32;
        self.stuck_fifo(i, v)
    }

    /// Clears PE `i`'s FIFO-H.
    #[inline]
    pub(crate) fn clear_h(&mut self, i: usize) {
        self.h_len[i] = 0;
    }

    /// Clears PE `i`'s FIFO-V.
    #[inline]
    pub(crate) fn clear_v(&mut self, i: usize) {
        self.v_len[i] = 0;
    }

    /// Clears every FIFO-H (kernel-row boundary).
    #[inline]
    pub(crate) fn clear_all_h(&mut self) {
        self.h_len.fill(0);
    }

    /// Clears every FIFO-V (window-pass boundary).
    #[inline]
    pub(crate) fn clear_all_v(&mut self) {
        self.v_len.fill(0);
    }

    /// Current FIFO occupancies `(H, V)` of PE `i`.
    #[inline]
    pub(crate) fn fifo_len(&self, i: usize) -> (usize, usize) {
        (self.h_len[i] as usize, self.v_len[i] as usize)
    }

    /// Peak FIFO occupancies `(H, V)` of PE `i` since construction/reset.
    #[inline]
    pub(crate) fn fifo_peaks(&self, i: usize) -> (usize, usize) {
        (self.h_peak[i] as usize, self.v_peak[i] as usize)
    }

    /// Deepest FIFO occupancies across all PEs `(H, V)`.
    pub(crate) fn max_fifo_peaks(&self) -> (usize, usize) {
        let h = self.h_peak.iter().copied().max().unwrap_or(0);
        let v = self.v_peak.iter().copied().max().unwrap_or(0);
        (h as usize, v as usize)
    }

    // ----- bulk mesh operations (the fast sweep kernel) ---------------
    //
    // One call covers the whole active block for one sweep cycle; the
    // per-element semantics are exactly the per-PE view calls the
    // instrumented path makes, fused into contiguous-array loops.

    /// Receives one neuron per active PE (row-major `vals` over an
    /// `aw × ah` block at the mesh origin, row stride `px_stride`),
    /// pushing FIFO-H (and FIFO-V when `push_v`) and MAC-ing with the
    /// broadcast synapse `k`.
    pub(crate) fn receive_mac(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &[Fx],
        k: Fx,
        push_v: bool,
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                let i = base + dx;
                self.push_h(i, v);
                if push_v {
                    self.push_v(i, v);
                }
                self.acc[i].mac(v, k);
            }
        }
    }

    /// [`PeArray::receive_mac`]'s max-pooling counterpart.
    pub(crate) fn receive_max(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &[Fx],
        push_v: bool,
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                let i = base + dx;
                self.push_h(i, v);
                if push_v {
                    self.push_v(i, v);
                }
                self.cmp[i] = self.cmp[i].max(v);
            }
        }
    }

    /// [`PeArray::receive_mac`]'s accumulate-only counterpart (average
    /// pooling / matrix sums).
    pub(crate) fn receive_add(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &[Fx],
        push_v: bool,
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                let i = base + dx;
                self.push_h(i, v);
                if push_v {
                    self.push_v(i, v);
                }
                self.acc[i].add_fx(v);
            }
        }
    }

    /// FIFO-less MAC over the active block (the Fig. 7 no-propagation
    /// ablation: every PE re-reads from NBin, so nothing is buffered).
    pub(crate) fn apply_mac(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &[Fx],
        k: Fx,
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                self.acc[base + dx].mac(v, k);
            }
        }
    }

    /// [`PeArray::apply_mac`]'s max-pooling counterpart.
    pub(crate) fn apply_max(&mut self, px_stride: usize, (aw, ah): (usize, usize), vals: &[Fx]) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                let i = base + dx;
                self.cmp[i] = self.cmp[i].max(v);
            }
        }
    }

    /// [`PeArray::apply_mac`]'s accumulate-only counterpart.
    pub(crate) fn apply_add(&mut self, px_stride: usize, (aw, ah): (usize, usize), vals: &[Fx]) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for (dx, &v) in vals[py * aw..(py + 1) * aw].iter().enumerate() {
                self.acc[base + dx].add_fx(v);
            }
        }
    }

    /// Pops the FIFO-H of each right neighbour into columns
    /// `0 .. aw−1` of `vals` (the rightmost column is filled by an NBin
    /// mode (f) read instead).
    pub(crate) fn propagate_h_block(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &mut [Fx],
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah {
            let base = py * px_stride;
            for dx in 0..aw - 1 {
                vals[py * aw + dx] = self.pop_h(base + dx + 1);
            }
        }
    }

    /// Pops the FIFO-V of each lower neighbour into rows `0 .. ah−1` of
    /// `vals` (the bottom row is filled by an NBin mode (c) read instead).
    pub(crate) fn propagate_v_block(
        &mut self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        vals: &mut [Fx],
    ) {
        debug_assert_eq!(vals.len(), aw * ah);
        for py in 0..ah.saturating_sub(1) {
            let base = (py + 1) * px_stride;
            for dx in 0..aw {
                vals[py * aw + dx] = self.pop_v(base + dx);
            }
        }
    }

    /// Drains the active block's accumulators into `out` (cleared first),
    /// row-major, through the PE output path.
    pub(crate) fn read_accumulators_into(
        &self,
        px_stride: usize,
        (aw, ah): (usize, usize),
        out: &mut Vec<Fx>,
    ) {
        out.clear();
        for py in 0..ah {
            let base = py * px_stride;
            for dx in 0..aw {
                out.push(self.accumulator(base + dx));
            }
        }
    }
}

/// Shared read-only view of one PE inside a [`PeArray`] — the Fig. 6
/// per-PE API, preserved for tests and the fault machinery.
#[derive(Clone, Copy)]
pub struct PeRef<'a> {
    pub(crate) arr: &'a PeArray,
    pub(crate) i: usize,
}

impl PeRef<'_> {
    /// Reads the accumulator out through the PE output path (truncate +
    /// saturate, then through any stuck-at output fault).
    #[inline]
    pub fn accumulator(&self) -> Fx {
        self.arr.accumulator(self.i)
    }

    /// Divides the accumulated sum by `count` (average pooling read-out).
    #[inline]
    pub fn accumulator_mean(&self, count: usize) -> Fx {
        self.arr.accumulator_mean(self.i, count)
    }

    /// The comparator register (max pooling result).
    #[inline]
    pub fn comparator(&self) -> Fx {
        self.arr.comparator(self.i)
    }

    /// The latched output.
    #[inline]
    pub fn output(&self) -> Fx {
        self.arr.output(self.i)
    }

    /// Current FIFO occupancies `(H, V)`.
    #[inline]
    pub fn fifo_len(&self) -> (usize, usize) {
        self.arr.fifo_len(self.i)
    }

    /// Peak FIFO occupancies `(H, V)` since construction/reset.
    #[inline]
    pub fn fifo_peaks(&self) -> (usize, usize) {
        self.arr.fifo_peaks(self.i)
    }

    /// The configured stuck-at fault, if any.
    #[inline]
    pub fn stuck(&self) -> Option<PeStuck> {
        self.arr.stuck(self.i)
    }
}

/// Mutable view of one PE inside a [`PeArray`].
pub struct PeMut<'a> {
    pub(crate) arr: &'a mut PeArray,
    pub(crate) i: usize,
}

impl PeMut<'_> {
    /// Begins a new output neuron for MAC/add work, pre-loading the bias.
    #[inline]
    pub fn reset_accumulator(&mut self, bias: Fx) {
        self.arr.reset_accumulator(self.i, bias);
    }

    /// Begins a new output neuron for max pooling.
    #[inline]
    pub fn reset_comparator(&mut self) {
        self.arr.reset_comparator(self.i);
    }

    /// One multiply-accumulate cycle.
    #[inline]
    pub fn mac(&mut self, neuron: Fx, synapse: Fx) {
        self.arr.mac(self.i, neuron, synapse);
    }

    /// One accumulate-only cycle (average pooling, matrix addition).
    #[inline]
    pub fn add(&mut self, neuron: Fx) {
        self.arr.add(self.i, neuron);
    }

    /// One comparison cycle (max pooling).
    #[inline]
    pub fn compare(&mut self, neuron: Fx) {
        self.arr.compare(self.i, neuron);
    }

    /// Latches a final value into the output register (what the NB
    /// controller's output register array collects).
    #[inline]
    pub fn latch_output(&mut self, v: Fx) {
        self.arr.latch_output(self.i, v);
    }

    /// Pushes a received neuron into FIFO-H (every received value).
    #[inline]
    pub fn push_h(&mut self, v: Fx) {
        self.arr.push_h(self.i, v);
    }

    /// Pushes a received neuron into FIFO-V (first-column values only).
    #[inline]
    pub fn push_v(&mut self, v: Fx) {
        self.arr.push_v(self.i, v);
    }

    /// Pops the oldest FIFO-H entry.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty.
    #[inline]
    pub fn pop_h(&mut self) -> Fx {
        self.arr.pop_h(self.i)
    }

    /// Pops the oldest FIFO-V entry.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty.
    #[inline]
    pub fn pop_v(&mut self) -> Fx {
        self.arr.pop_v(self.i)
    }

    /// Clears FIFO-H (kernel-row boundary).
    #[inline]
    pub fn clear_h(&mut self) {
        self.arr.clear_h(self.i);
    }

    /// Clears FIFO-V (window-pass boundary).
    #[inline]
    pub fn clear_v(&mut self) {
        self.arr.clear_v(self.i);
    }

    /// Installs (or clears) a stuck-at datapath fault.
    #[inline]
    pub fn set_stuck(&mut self, stuck: Option<PeStuck>) {
        self.arr.set_stuck(self.i, stuck);
    }

    /// Reads the accumulator out through the PE output path.
    #[inline]
    pub fn accumulator(&self) -> Fx {
        self.arr.accumulator(self.i)
    }

    /// Divides the accumulated sum by `count` (average pooling read-out).
    #[inline]
    pub fn accumulator_mean(&self, count: usize) -> Fx {
        self.arr.accumulator_mean(self.i, count)
    }

    /// The comparator register (max pooling result).
    #[inline]
    pub fn comparator(&self) -> Fx {
        self.arr.comparator(self.i)
    }

    /// The latched output.
    #[inline]
    pub fn output(&self) -> Fx {
        self.arr.output(self.i)
    }

    /// Current FIFO occupancies `(H, V)`.
    #[inline]
    pub fn fifo_len(&self) -> (usize, usize) {
        self.arr.fifo_len(self.i)
    }

    /// Peak FIFO occupancies `(H, V)` since construction/reset.
    #[inline]
    pub fn fifo_peaks(&self) -> (usize, usize) {
        self.arr.fifo_peaks(self.i)
    }

    /// The configured stuck-at fault, if any.
    #[inline]
    pub fn stuck(&self) -> Option<PeStuck> {
        self.arr.stuck(self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one() -> PeArray {
        PeArray::new(1)
    }

    #[test]
    fn mac_chain_accumulates_with_bias() {
        let mut pe = one();
        pe.reset_accumulator(0, Fx::from_f32(0.5));
        pe.mac(0, Fx::from_f32(2.0), Fx::from_f32(3.0));
        pe.mac(0, Fx::from_f32(-1.0), Fx::from_f32(1.0));
        assert_eq!(pe.accumulator(0), Fx::from_f32(5.5));
    }

    #[test]
    fn comparator_tracks_max() {
        let mut pe = one();
        pe.reset_comparator(0);
        pe.compare(0, Fx::from_f32(-3.0));
        assert_eq!(pe.comparator(0), Fx::from_f32(-3.0));
        pe.compare(0, Fx::from_f32(1.0));
        pe.compare(0, Fx::from_f32(0.5));
        assert_eq!(pe.comparator(0), Fx::from_f32(1.0));
    }

    #[test]
    fn mean_readout_for_average_pooling() {
        let mut pe = one();
        pe.reset_accumulator(0, Fx::ZERO);
        for v in [1.0f32, 2.0, 3.0, 6.0] {
            pe.add(0, Fx::from_f32(v));
        }
        assert_eq!(pe.accumulator_mean(0, 4), Fx::from_f32(3.0));
    }

    #[test]
    fn fifos_are_fifo_ordered() {
        let mut pe = one();
        pe.set_fifo_depths(4, 4);
        pe.push_h(0, Fx::from_int(1));
        pe.push_h(0, Fx::from_int(2));
        assert_eq!(pe.pop_h(0), Fx::from_int(1));
        assert_eq!(pe.pop_h(0), Fx::from_int(2));
        pe.push_v(0, Fx::from_int(9));
        assert_eq!(pe.pop_v(0), Fx::from_int(9));
    }

    #[test]
    fn peaks_record_high_water_mark() {
        let mut pe = one();
        pe.set_fifo_depths(2, 1);
        pe.push_h(0, Fx::ZERO);
        pe.push_h(0, Fx::ZERO);
        pe.pop_h(0);
        pe.push_h(0, Fx::ZERO);
        assert_eq!(pe.fifo_peaks(0), (2, 0));
        assert_eq!(pe.fifo_len(0), (2, 0));
        pe.clear_h(0);
        assert_eq!(pe.fifo_len(0), (0, 0));
        assert_eq!(pe.fifo_peaks(0), (2, 0));
    }

    #[test]
    fn full_fifo_evicts_oldest_like_a_shift_register() {
        let mut pe = one();
        pe.set_fifo_depths(2, 2);
        pe.push_h(0, Fx::from_int(1));
        pe.push_h(0, Fx::from_int(2));
        pe.push_h(0, Fx::from_int(3)); // evicts 1
        assert_eq!(pe.fifo_len(0).0, 2);
        assert_eq!(pe.pop_h(0), Fx::from_int(2));
        assert_eq!(pe.pop_h(0), Fx::from_int(3));
    }

    #[test]
    fn shrunk_depth_keeps_live_entries_growable() {
        // Legacy VecDeque semantics: shrinking the depth below the live
        // length does not evict; a push then grows past the depth.
        let mut pe = one();
        pe.set_fifo_depths(3, 1);
        pe.push_h(0, Fx::from_int(1));
        pe.push_h(0, Fx::from_int(2));
        pe.set_fifo_depths(1, 1);
        pe.push_h(0, Fx::from_int(3));
        assert_eq!(pe.fifo_len(0).0, 3);
        assert_eq!(pe.pop_h(0), Fx::from_int(1));
        assert_eq!(pe.pop_h(0), Fx::from_int(2));
        assert_eq!(pe.pop_h(0), Fx::from_int(3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_fifo_depth_rejected() {
        let mut pe = one();
        pe.set_fifo_depths(0, 1);
    }

    #[test]
    #[should_panic(expected = "FIFO-H underflow")]
    fn empty_pop_is_a_scheduling_bug() {
        let mut pe = one();
        let _ = pe.pop_h(0);
    }

    #[test]
    fn output_register_latches() {
        let mut pe = one();
        pe.latch_output(0, Fx::from_f32(1.5));
        assert_eq!(pe.output(0), Fx::from_f32(1.5));
    }

    #[test]
    fn stuck_output_fault_pins_bits_on_readout() {
        let mut pe = one();
        // Bit 0 stuck at 1 on the output path.
        pe.set_stuck(
            0,
            Some(PeStuck {
                mask: 0x0001,
                value: 0x0001,
                target: PeStuckTarget::Output,
            }),
        );
        assert!(pe.any_stuck());
        pe.reset_accumulator(0, Fx::ZERO);
        assert_eq!(pe.accumulator(0).to_bits(), 0x0001);
        // FIFO path is unaffected by an Output-target fault.
        pe.push_h(0, Fx::ZERO);
        assert_eq!(pe.pop_h(0), Fx::ZERO);
    }

    #[test]
    fn stuck_fifo_fault_corrupts_propagated_values_only() {
        let mut pe = one();
        pe.set_stuck(
            0,
            Some(PeStuck {
                mask: 0x0100,
                value: 0x0000,
                target: PeStuckTarget::Fifo,
            }),
        );
        pe.set_fifo_depths(2, 2);
        pe.push_h(0, Fx::from_bits(0x01FF));
        assert_eq!(pe.pop_h(0).to_bits(), 0x00FF);
        pe.reset_accumulator(0, Fx::from_bits(0x0100));
        assert_eq!(pe.accumulator(0).to_bits(), 0x0100);
    }

    #[test]
    fn stuck_fault_survives_reset() {
        let mut pe = one();
        let fault = PeStuck {
            mask: 0x8000,
            value: 0x8000,
            target: PeStuckTarget::Output,
        };
        pe.set_stuck(0, Some(fault));
        pe.reset();
        assert_eq!(pe.stuck(0), Some(fault));
        assert!(pe.any_stuck());
        pe.set_stuck(0, None);
        pe.reset();
        assert_eq!(pe.stuck(0), None);
        assert!(!pe.any_stuck());
    }

    #[test]
    fn reset_clears_previous_neuron_state() {
        let mut pe = one();
        pe.mac(0, Fx::ONE, Fx::ONE);
        pe.reset_accumulator(0, Fx::ZERO);
        assert_eq!(pe.accumulator(0), Fx::ZERO);
        pe.compare(0, Fx::MAX);
        pe.reset_comparator(0);
        assert_eq!(pe.comparator(0), Fx::MIN);
        pe.set_fifo_depths(4, 4);
        pe.push_h(0, Fx::ONE);
        pe.reset();
        assert_eq!(pe.fifo_len(0), (0, 0));
        assert_eq!(pe.fifo_peaks(0), (0, 0));
        assert_eq!(pe.len(), 1);
    }

    #[test]
    fn bulk_receive_matches_per_pe_calls() {
        // 2×2 block on a 3-wide mesh row stride.
        let mut bulk = PeArray::new(6);
        let mut scalar = PeArray::new(6);
        let vals: Vec<Fx> = (1..=4).map(Fx::from_int).collect();
        let k = Fx::from_f32(0.5);
        for arr in [&mut bulk, &mut scalar] {
            arr.set_fifo_depths(1, 1);
            for i in 0..6 {
                arr.reset_accumulator(i, Fx::ZERO);
            }
        }
        bulk.receive_mac(3, (2, 2), &vals, k, true);
        for py in 0..2 {
            for dx in 0..2 {
                let i = py * 3 + dx;
                let v = vals[py * 2 + dx];
                scalar.push_h(i, v);
                scalar.push_v(i, v);
                scalar.mac(i, v, k);
            }
        }
        for i in 0..6 {
            assert_eq!(bulk.accumulator(i), scalar.accumulator(i));
            assert_eq!(bulk.fifo_len(i), scalar.fifo_len(i));
            assert_eq!(bulk.fifo_peaks(i), scalar.fifo_peaks(i));
        }
        assert_eq!(bulk.max_fifo_peaks(), (1, 1));
    }

    #[test]
    fn bulk_propagate_matches_per_pe_pops() {
        let mut arr = PeArray::new(4); // 2×2 mesh, stride 2
        arr.set_fifo_depths(1, 1);
        for i in 0..4 {
            arr.push_h(i, Fx::from_int(i as i32 + 1));
            arr.push_v(i, Fx::from_int(10 + i as i32));
        }
        let mut vals = vec![Fx::ZERO; 4];
        arr.propagate_h_block(2, (2, 2), &mut vals);
        // Column 0 receives the right neighbour's FIFO-H head.
        assert_eq!(vals[0], Fx::from_int(2));
        assert_eq!(vals[2], Fx::from_int(4));
        let mut vals = vec![Fx::ZERO; 4];
        arr.propagate_v_block(2, (2, 2), &mut vals);
        // Row 0 receives the lower neighbour's FIFO-V head.
        assert_eq!(vals[0], Fx::from_int(12));
        assert_eq!(vals[1], Fx::from_int(13));
    }
}
