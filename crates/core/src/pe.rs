//! A single processing element (Fig. 6).

use shidiannao_faults::{PeStuck, PeStuckTarget};
use shidiannao_fixed::{Accum, Fx};
use std::collections::VecDeque;

/// One processing element of the NFU mesh.
///
/// Per Fig. 6, a PE holds a multiplier + adder (modeled by the widened
/// [`Accum`]), a comparator with its register (max pooling), an output
/// register, and the two inter-PE FIFOs:
///
/// * **FIFO-H** buffers every input neuron the PE receives; the *left*
///   neighbour pops it `Sx` cycles later while sweeping a kernel row,
/// * **FIFO-V** buffers the neurons received at the first column of a
///   kernel row (`kx = 0`); the *upper* neighbour pops it `Sy` kernel rows
///   later.
///
/// Peak occupancies are recorded so tests can verify the §5.1 sizing
/// (FIFO-H depth `Sx`, FIFO-V depth `Sy`).
#[derive(Clone, Debug)]
pub struct Pe {
    acc: Accum,
    cmp_reg: Fx,
    out_reg: Fx,
    fifo_h: VecDeque<Fx>,
    fifo_v: VecDeque<Fx>,
    h_depth: usize,
    v_depth: usize,
    h_peak: usize,
    v_peak: usize,
    // Hardware stuck-at fault: survives reset() (it is a property of the
    // silicon, not of the architectural state).
    stuck: Option<PeStuck>,
}

impl Default for Pe {
    fn default() -> Pe {
        Pe {
            acc: Accum::new(),
            cmp_reg: Fx::ZERO,
            out_reg: Fx::ZERO,
            fifo_h: VecDeque::new(),
            fifo_v: VecDeque::new(),
            h_depth: 1,
            v_depth: 1,
            h_peak: 0,
            v_peak: 0,
            stuck: None,
        }
    }
}

impl Pe {
    /// Creates an idle PE.
    pub fn new() -> Pe {
        Pe {
            cmp_reg: Fx::MIN,
            ..Pe::default()
        }
    }

    /// Restores the PE to its power-on state (accumulator, registers,
    /// FIFOs, and peak counters) — called between inferences so a reused
    /// mesh behaves exactly like a freshly constructed one. A configured
    /// stuck-at fault persists: it models broken silicon, not state.
    pub fn reset(&mut self) {
        let stuck = self.stuck;
        *self = Pe::new();
        self.stuck = stuck;
    }

    /// Installs (or clears) a stuck-at datapath fault.
    pub fn set_stuck(&mut self, stuck: Option<PeStuck>) {
        self.stuck = stuck;
    }

    /// The configured stuck-at fault, if any.
    pub fn stuck(&self) -> Option<PeStuck> {
        self.stuck
    }

    #[inline]
    fn stuck_output(&self, v: Fx) -> Fx {
        match self.stuck {
            Some(f) if f.target == PeStuckTarget::Output => f.apply(v),
            _ => v,
        }
    }

    #[inline]
    fn stuck_fifo(&self, v: Fx) -> Fx {
        match self.stuck {
            Some(f) if f.target == PeStuckTarget::Fifo => f.apply(v),
            _ => v,
        }
    }

    /// Begins a new output neuron for MAC/add work, pre-loading the bias.
    pub fn reset_accumulator(&mut self, bias: Fx) {
        self.acc = Accum::from_fx(bias);
    }

    /// Begins a new output neuron for max pooling.
    pub fn reset_comparator(&mut self) {
        self.cmp_reg = Fx::MIN;
    }

    /// One multiply-accumulate cycle.
    #[inline]
    pub fn mac(&mut self, neuron: Fx, synapse: Fx) {
        self.acc.mac(neuron, synapse);
    }

    /// One accumulate-only cycle (average pooling, matrix addition).
    #[inline]
    pub fn add(&mut self, neuron: Fx) {
        self.acc.add_fx(neuron);
    }

    /// One comparison cycle (max pooling).
    #[inline]
    pub fn compare(&mut self, neuron: Fx) {
        self.cmp_reg = self.cmp_reg.max(neuron);
    }

    /// Reads the accumulator out through the PE output path (truncate +
    /// saturate, then through any stuck-at output fault).
    #[inline]
    pub fn accumulator(&self) -> Fx {
        self.stuck_output(self.acc.to_fx())
    }

    /// Divides the accumulated sum by `count` (average pooling read-out).
    #[inline]
    pub fn accumulator_mean(&self, count: usize) -> Fx {
        self.stuck_output(self.acc.mean(count))
    }

    /// The comparator register (max pooling result).
    #[inline]
    pub fn comparator(&self) -> Fx {
        self.stuck_output(self.cmp_reg)
    }

    /// Latches a final value into the output register (what the NB
    /// controller's output register array collects).
    #[inline]
    pub fn latch_output(&mut self, v: Fx) {
        self.out_reg = v;
    }

    /// The latched output.
    #[inline]
    pub fn output(&self) -> Fx {
        self.out_reg
    }

    /// Configures the FIFO depths for the coming window pass: `Sx` slots
    /// for FIFO-H and `Sy` for FIFO-V (the §5.1 sizing). The FIFOs behave
    /// as shift registers: pushing into a full FIFO silently evicts the
    /// oldest entry — the value a left/upper neighbour would have consumed
    /// if one existed (edge PEs push like everyone else, Fig. 13).
    ///
    /// # Panics
    ///
    /// Panics if a depth is zero.
    pub fn set_fifo_depths(&mut self, h_depth: usize, v_depth: usize) {
        assert!(h_depth > 0 && v_depth > 0, "FIFO depths must be non-zero");
        self.h_depth = h_depth;
        self.v_depth = v_depth;
    }

    /// Pushes a received neuron into FIFO-H (every received value).
    pub fn push_h(&mut self, v: Fx) {
        if self.fifo_h.len() == self.h_depth {
            self.fifo_h.pop_front();
        }
        self.fifo_h.push_back(v);
        self.h_peak = self.h_peak.max(self.fifo_h.len());
    }

    /// Pushes a received neuron into FIFO-V (first-column values only).
    pub fn push_v(&mut self, v: Fx) {
        if self.fifo_v.len() == self.v_depth {
            self.fifo_v.pop_front();
        }
        self.fifo_v.push_back(v);
        self.v_peak = self.v_peak.max(self.fifo_v.len());
    }

    /// Pops the oldest FIFO-H entry — called on behalf of the left
    /// neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty (a scheduling bug: the propagation
    /// schedule guarantees the value was pushed `Sx` cycles earlier).
    pub fn pop_h(&mut self) -> Fx {
        let v = self.fifo_h.pop_front().expect("FIFO-H underflow");
        self.stuck_fifo(v)
    }

    /// Pops the oldest FIFO-V entry — called on behalf of the upper
    /// neighbour.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty.
    pub fn pop_v(&mut self) -> Fx {
        let v = self.fifo_v.pop_front().expect("FIFO-V underflow");
        self.stuck_fifo(v)
    }

    /// Clears FIFO-H (kernel-row boundary).
    pub fn clear_h(&mut self) {
        self.fifo_h.clear();
    }

    /// Clears FIFO-V (window-pass boundary).
    pub fn clear_v(&mut self) {
        self.fifo_v.clear();
    }

    /// Current FIFO occupancies `(H, V)`.
    pub fn fifo_len(&self) -> (usize, usize) {
        (self.fifo_h.len(), self.fifo_v.len())
    }

    /// Peak FIFO occupancies `(H, V)` since construction.
    pub fn fifo_peaks(&self) -> (usize, usize) {
        (self.h_peak, self.v_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_chain_accumulates_with_bias() {
        let mut pe = Pe::new();
        pe.reset_accumulator(Fx::from_f32(0.5));
        pe.mac(Fx::from_f32(2.0), Fx::from_f32(3.0));
        pe.mac(Fx::from_f32(-1.0), Fx::from_f32(1.0));
        assert_eq!(pe.accumulator(), Fx::from_f32(5.5));
    }

    #[test]
    fn comparator_tracks_max() {
        let mut pe = Pe::new();
        pe.reset_comparator();
        pe.compare(Fx::from_f32(-3.0));
        assert_eq!(pe.comparator(), Fx::from_f32(-3.0));
        pe.compare(Fx::from_f32(1.0));
        pe.compare(Fx::from_f32(0.5));
        assert_eq!(pe.comparator(), Fx::from_f32(1.0));
    }

    #[test]
    fn mean_readout_for_average_pooling() {
        let mut pe = Pe::new();
        pe.reset_accumulator(Fx::ZERO);
        for v in [1.0f32, 2.0, 3.0, 6.0] {
            pe.add(Fx::from_f32(v));
        }
        assert_eq!(pe.accumulator_mean(4), Fx::from_f32(3.0));
    }

    #[test]
    fn fifos_are_fifo_ordered() {
        let mut pe = Pe::new();
        pe.set_fifo_depths(4, 4);
        pe.push_h(Fx::from_int(1));
        pe.push_h(Fx::from_int(2));
        assert_eq!(pe.pop_h(), Fx::from_int(1));
        assert_eq!(pe.pop_h(), Fx::from_int(2));
        pe.push_v(Fx::from_int(9));
        assert_eq!(pe.pop_v(), Fx::from_int(9));
    }

    #[test]
    fn peaks_record_high_water_mark() {
        let mut pe = Pe::new();
        pe.set_fifo_depths(2, 1);
        pe.push_h(Fx::ZERO);
        pe.push_h(Fx::ZERO);
        pe.pop_h();
        pe.push_h(Fx::ZERO);
        assert_eq!(pe.fifo_peaks(), (2, 0));
        assert_eq!(pe.fifo_len(), (2, 0));
        pe.clear_h();
        assert_eq!(pe.fifo_len(), (0, 0));
        assert_eq!(pe.fifo_peaks(), (2, 0));
    }

    #[test]
    fn full_fifo_evicts_oldest_like_a_shift_register() {
        let mut pe = Pe::new();
        pe.set_fifo_depths(2, 2);
        pe.push_h(Fx::from_int(1));
        pe.push_h(Fx::from_int(2));
        pe.push_h(Fx::from_int(3)); // evicts 1
        assert_eq!(pe.fifo_len().0, 2);
        assert_eq!(pe.pop_h(), Fx::from_int(2));
        assert_eq!(pe.pop_h(), Fx::from_int(3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_fifo_depth_rejected() {
        let mut pe = Pe::new();
        pe.set_fifo_depths(0, 1);
    }

    #[test]
    #[should_panic(expected = "FIFO-H underflow")]
    fn empty_pop_is_a_scheduling_bug() {
        let mut pe = Pe::new();
        let _ = pe.pop_h();
    }

    #[test]
    fn output_register_latches() {
        let mut pe = Pe::new();
        pe.latch_output(Fx::from_f32(1.5));
        assert_eq!(pe.output(), Fx::from_f32(1.5));
    }

    #[test]
    fn stuck_output_fault_pins_bits_on_readout() {
        let mut pe = Pe::new();
        // Bit 0 stuck at 1 on the output path.
        pe.set_stuck(Some(PeStuck {
            mask: 0x0001,
            value: 0x0001,
            target: PeStuckTarget::Output,
        }));
        pe.reset_accumulator(Fx::ZERO);
        assert_eq!(pe.accumulator().to_bits(), 0x0001);
        // FIFO path is unaffected by an Output-target fault.
        pe.push_h(Fx::ZERO);
        assert_eq!(pe.pop_h(), Fx::ZERO);
    }

    #[test]
    fn stuck_fifo_fault_corrupts_propagated_values_only() {
        let mut pe = Pe::new();
        pe.set_stuck(Some(PeStuck {
            mask: 0x0100,
            value: 0x0000,
            target: PeStuckTarget::Fifo,
        }));
        pe.set_fifo_depths(2, 2);
        pe.push_h(Fx::from_bits(0x01FF));
        assert_eq!(pe.pop_h().to_bits(), 0x00FF);
        pe.reset_accumulator(Fx::from_bits(0x0100));
        assert_eq!(pe.accumulator().to_bits(), 0x0100);
    }

    #[test]
    fn stuck_fault_survives_reset() {
        let mut pe = Pe::new();
        let fault = PeStuck {
            mask: 0x8000,
            value: 0x8000,
            target: PeStuckTarget::Output,
        };
        pe.set_stuck(Some(fault));
        pe.reset();
        assert_eq!(pe.stuck(), Some(fault));
        pe.set_stuck(None);
        pe.reset();
        assert_eq!(pe.stuck(), None);
    }

    #[test]
    fn reset_clears_previous_neuron_state() {
        let mut pe = Pe::new();
        pe.mac(Fx::ONE, Fx::ONE);
        pe.reset_accumulator(Fx::ZERO);
        assert_eq!(pe.accumulator(), Fx::ZERO);
        pe.compare(Fx::MAX);
        pe.reset_comparator();
        assert_eq!(pe.comparator(), Fx::MIN);
    }
}
