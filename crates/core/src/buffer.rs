//! The on-chip SRAM buffers: NBin/NBout neuron buffers with the six-mode
//! NB controller (Figs. 9–11), the synapse buffer, and the instruction
//! buffer.
//!
//! Every read mode has a `*_into` form that fills caller-owned scratch
//! storage — the steady-state simulation path allocates nothing. The
//! `Vec`-returning forms are thin wrappers kept for tests and one-shot
//! callers.

use crate::stats::{LayerStats, ReadMode};
use core::fmt;
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};

/// Error raised when data does not fit an on-chip buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityError {
    /// Which buffer overflowed.
    pub buffer: &'static str,
    /// Bytes required.
    pub needed: usize,
    /// Bytes available.
    pub available: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} overflow: need {} bytes but only {} available",
            self.buffer, self.needed, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// Error raised when a buffer is read (or finished) in a state that holds
/// no data — e.g. a read before any [`NeuronBuffer::load`], or taking an
/// output after a failed load left the buffer empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptyBufferError {
    /// Which buffer (and role) was empty.
    pub buffer: &'static str,
}

impl fmt::Display for EmptyBufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is empty: read before a successful load", self.buffer)
    }
}

impl std::error::Error for EmptyBufferError {}

/// Reusable working storage for bank-conflict accounting.
///
/// `loads` is the per-bank word-count histogram (`2 × Py` banks);
/// `words` holds the deduplicated word list for irregular (gather)
/// access patterns. Owned by the session's scratch arena so that
/// steady-state conflict modelling allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct ReadScratch {
    words: Vec<(usize, usize)>,
    loads: Vec<u32>,
}

impl ReadScratch {
    /// Resets the per-bank histogram for a buffer with `py` banks per
    /// group and returns the bank count.
    #[inline]
    fn reset_loads(&mut self, py: usize) -> usize {
        self.loads.clear();
        self.loads.resize(2 * py, 0);
        2 * py
    }
}

/// A neuron buffer (NBin or NBout) with its controller.
///
/// The physical organisation follows §6 / Fig. 11: `2 × Py` banks of
/// `Px × 2` bytes width; a feature-map row is striped across one bank group
/// with `Px`-column segments alternating between group 0 and group 1, and
/// bank index `y mod Py` within the group. The controller exposes the six
/// read modes of Fig. 10 and the block write mode of §7.1; every access is
/// tallied into [`LayerStats`].
///
/// A retired output stack is kept as `spare` storage and recycled by the
/// next [`NeuronBuffer::begin_output`], so the per-layer role swap churns
/// no allocations once shapes have been seen. Maps shed when a reshape
/// shrinks the map count are parked in a recycle `pool` rather than
/// dropped, so layer sequences whose map counts oscillate (1 input map →
/// many conv maps → few classifier maps) also settle at a high-water mark
/// and then allocate nothing.
#[derive(Clone, Debug)]
pub struct NeuronBuffer {
    px: usize,
    py: usize,
    capacity_bytes: usize,
    stack: Option<MapStack<Fx>>,
    // Output under construction: map dims + write coverage tracking.
    out: Option<MapStack<Fx>>,
    out_written: u64,
    // Bank-group usage histogram for the Fig. 11 write-parity invariant.
    write_groups: [u64; 2],
    // Retired stack recycled by begin_output (not architectural state).
    spare: Option<MapStack<Fx>>,
    // Maps shed by shrinking reshapes, reused before allocating anew
    // (not architectural state).
    pool: Vec<FeatureMap<Fx>>,
}

impl PartialEq for NeuronBuffer {
    fn eq(&self, other: &NeuronBuffer) -> bool {
        // `spare` is recycled storage, not architectural state.
        self.px == other.px
            && self.py == other.py
            && self.capacity_bytes == other.capacity_bytes
            && self.stack == other.stack
            && self.out == other.out
            && self.out_written == other.out_written
            && self.write_groups == other.write_groups
    }
}

impl NeuronBuffer {
    /// Creates an empty buffer for a `Px × Py` NFU.
    pub fn new(px: usize, py: usize, capacity_bytes: usize) -> NeuronBuffer {
        NeuronBuffer {
            px,
            py,
            capacity_bytes,
            stack: None,
            out: None,
            out_written: 0,
            write_groups: [0, 0],
            spare: None,
            pool: Vec::new(),
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Loads a whole layer's neurons (role handoff or sensor streaming).
    /// No access cost is charged — charging the producer is the caller's
    /// job.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the stack exceeds capacity.
    pub fn load(&mut self, stack: MapStack<Fx>) -> Result<(), CapacityError> {
        let needed = stack.neuron_count() * 2;
        if needed > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "NB",
                needed,
                available: self.capacity_bytes,
            });
        }
        self.stack = Some(stack);
        Ok(())
    }

    /// [`NeuronBuffer::load`] from a borrowed stack, reusing the storage
    /// of whatever the buffer previously held (capacity-reusing
    /// `clone_from`) — the steady-state way to stream a new input frame
    /// in without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the stack exceeds capacity.
    pub fn load_from(&mut self, source: &MapStack<Fx>) -> Result<(), CapacityError> {
        let needed = source.neuron_count() * 2;
        if needed > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "NB",
                needed,
                available: self.capacity_bytes,
            });
        }
        match &mut self.stack {
            Some(stack) => stack.clone_from_recycling(source, &mut self.pool),
            None => self.stack = Some(source.clone()),
        }
        Ok(())
    }

    /// The currently loaded layer, if any.
    pub fn contents(&self) -> Option<&MapStack<Fx>> {
        self.stack.as_ref()
    }

    /// Mutable access to the loaded layer — the schedule-replay path
    /// XORs a fault overlay's silent NB flips into the stack in place
    /// before executing a layer's arithmetic.
    pub(crate) fn contents_mut(&mut self) -> Option<&mut MapStack<Fx>> {
        self.stack.as_mut()
    }

    /// Removes and returns the loaded layer.
    pub fn take(&mut self) -> Option<MapStack<Fx>> {
        self.stack.take()
    }

    fn loaded(&self) -> Result<&MapStack<Fx>, EmptyBufferError> {
        self.stack.as_ref().ok_or(EmptyBufferError {
            buffer: "NB (input role)",
        })
    }

    /// The bank group (0 or 1) a column index belongs to (Fig. 11).
    #[inline]
    pub fn bank_group_of(&self, x: usize) -> usize {
        (x / self.px) % 2
    }

    /// Serialization penalty of a *rectangular* access: the `x`-walk
    /// visits column segments in non-decreasing order and the `y`-walk
    /// visits `h` distinct rows, so the distinct `(segment, row)` word
    /// set is (deduplicated segments) × (rows) — no sort needed. Words
    /// mapping to the same bank (same segment parity, same `row mod Py`)
    /// share a port and serialize; returns the extra cycles beyond the
    /// first.
    fn rect_extra_cycles(
        &self,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
        scratch: &mut ReadScratch,
    ) -> u64 {
        if h == 1 {
            // Single row: every word shares `y mod Py`, so words conflict
            // exactly when their segments share a group parity. Count
            // distinct segments per parity without the histogram — this
            // is the per-sweep-cycle mode (c) path.
            let mut counts = [0u64; 2];
            let mut prev_seg = usize::MAX;
            for i in 0..w {
                let seg = (x0 + i * sx) / self.px;
                if seg != prev_seg {
                    prev_seg = seg;
                    counts[seg % 2] += 1;
                }
            }
            return counts[0].max(counts[1]).saturating_sub(1);
        }
        if w == 1 && sy == 1 && h <= self.py {
            // Single unit-stride column of at most Py rows: one segment,
            // all distinct banks — the per-sweep-cycle mode (f) path.
            return 0;
        }
        scratch.reset_loads(self.py);
        let mut max = 0u32;
        let mut prev_seg = usize::MAX;
        for i in 0..w {
            let seg = (x0 + i * sx) / self.px;
            if seg == prev_seg {
                continue;
            }
            prev_seg = seg;
            let group = (seg % 2) * self.py;
            for j in 0..h {
                let bank = group + (y0 + j * sy) % self.py;
                scratch.loads[bank] += 1;
                max = max.max(scratch.loads[bank]);
            }
        }
        u64::from(max.max(1)) - 1
    }

    /// Serialization penalty of an irregular word set (gather reads):
    /// dedup the words, histogram per bank, extra cycles beyond the
    /// first.
    fn gather_extra_cycles(
        &self,
        words: impl Iterator<Item = (usize, usize)>,
        scratch: &mut ReadScratch,
    ) -> u64 {
        scratch.words.clear();
        scratch.words.extend(words);
        scratch.words.sort_unstable();
        scratch.words.dedup();
        scratch.reset_loads(self.py);
        let mut max = 0u32;
        for &(seg, y) in &scratch.words {
            let bank = (seg % 2) * self.py + y % self.py;
            scratch.loads[bank] += 1;
            max = max.max(scratch.loads[bank]);
        }
        u64::from(max.max(1)) - 1
    }

    /// Mode (a)/(b) (or (e) when strided): read a `w × h` tile of neurons
    /// whose top-left input coordinate is `(x0, y0)`, consecutive PEs
    /// `stride` apart, into `out` (cleared first), row-major.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    // Mirrors the NB controller port list (map, origin, extent, stride)
    // plus the two caller-owned scratch targets; bundling them would only
    // obscure the Fig. 10 interface.
    #[allow(clippy::too_many_arguments)]
    pub fn read_tile_into(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
        out: &mut Vec<Fx>,
    ) -> Result<(), EmptyBufferError> {
        let stack = self.loaded()?;
        let mode = if sx == 1 && sy == 1 {
            if self.bank_group_of(x0) == 0 {
                ReadMode::A
            } else {
                ReadMode::B
            }
        } else {
            ReadMode::E
        };
        stats.nbin_read(mode, (w * h * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (w, h), (sx, sy), scratch);
        let fm = &stack[map];
        out.clear();
        if sx == 1 {
            for j in 0..h {
                out.extend_from_slice(&fm.row(y0 + j * sy)[x0..x0 + w]);
            }
        } else {
            for j in 0..h {
                for i in 0..w {
                    out.push(fm[(x0 + i * sx, y0 + j * sy)]);
                }
            }
        }
        Ok(())
    }

    /// Mode (a)/(b)/(e) tile read returning a fresh `Vec` (thin wrapper
    /// over [`NeuronBuffer::read_tile_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_tile(
        &self,
        map: usize,
        origin: (usize, usize),
        dims: (usize, usize),
        stride: (usize, usize),
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        self.read_tile_into(map, origin, dims, stride, stats, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Mode (c): read up to `Px` neurons of one row from a single bank
    /// into `out` (cleared first).
    ///
    /// The `n ≤ Px` bank-width bound is `debug_assert!`-checked only: the
    /// executors derive `n` from the active block width, which the block
    /// schedule caps at `Px` by construction.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    // Mirrors the NB controller port list (map, origin, extent, stride)
    // plus the two caller-owned scratch targets; bundling them would only
    // obscure the Fig. 10 interface.
    #[allow(clippy::too_many_arguments)]
    pub fn read_row_into(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sx: usize,
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
        out: &mut Vec<Fx>,
    ) -> Result<(), EmptyBufferError> {
        debug_assert!(
            n <= self.px,
            "mode (c) reads at most Px={} neurons",
            self.px
        );
        let stack = self.loaded()?;
        let mode = if sx == 1 { ReadMode::C } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (n, 1), (sx, 1), scratch);
        let fm = &stack[map];
        out.clear();
        if sx == 1 {
            out.extend_from_slice(&fm.row(y0)[x0..x0 + n]);
        } else {
            for i in 0..n {
                out.push(fm[(x0 + i * sx, y0)]);
            }
        }
        Ok(())
    }

    /// Mode (c) row read returning a fresh `Vec` (thin wrapper over
    /// [`NeuronBuffer::read_row_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_row(
        &self,
        map: usize,
        origin: (usize, usize),
        n: usize,
        sx: usize,
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        self.read_row_into(map, origin, n, sx, stats, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Mode (f): read one neuron per bank — a column of up to `Py`
    /// neurons — into `out` (cleared first).
    ///
    /// The `n ≤ Py` bank-count bound is `debug_assert!`-checked only (see
    /// [`NeuronBuffer::read_row_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    // Mirrors the NB controller port list (map, origin, extent, stride)
    // plus the two caller-owned scratch targets; bundling them would only
    // obscure the Fig. 10 interface.
    #[allow(clippy::too_many_arguments)]
    pub fn read_col_into(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sy: usize,
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
        out: &mut Vec<Fx>,
    ) -> Result<(), EmptyBufferError> {
        debug_assert!(
            n <= self.py,
            "mode (f) reads at most Py={} neurons",
            self.py
        );
        let stack = self.loaded()?;
        let mode = if sy == 1 { ReadMode::F } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (1, n), (1, sy), scratch);
        let fm = &stack[map];
        out.clear();
        for j in 0..n {
            out.push(fm[(x0, y0 + j * sy)]);
        }
        Ok(())
    }

    /// Mode (f) column read returning a fresh `Vec` (thin wrapper over
    /// [`NeuronBuffer::read_col_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_col(
        &self,
        map: usize,
        origin: (usize, usize),
        n: usize,
        sy: usize,
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        self.read_col_into(map, origin, n, sy, stats, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Mode (d): read a single neuron by flat (map-major, row-major) index
    /// — the classifier-layer broadcast read. Already allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_single(&self, flat: usize, stats: &mut LayerStats) -> Result<Fx, EmptyBufferError> {
        let stack = self.loaded()?;
        let per_map = stack.width() * stack.height();
        let map = flat / per_map;
        let rem = flat % per_map;
        stats.nbin_read(ReadMode::D, 2);
        Ok(stack[map][(rem % stack.width(), rem / stack.width())])
    }

    /// Mode (e): gather arbitrary strided coordinates (pooling windows)
    /// into `out` (cleared first); one access delivering `coords.len()`
    /// neurons.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_gather_into(
        &self,
        map: usize,
        coords: &[(usize, usize)],
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
        out: &mut Vec<Fx>,
    ) -> Result<(), EmptyBufferError> {
        let stack = self.loaded()?;
        stats.nbin_read(ReadMode::E, (coords.len() * 2) as u64);
        stats.bank_conflict_cycles +=
            self.gather_extra_cycles(coords.iter().map(|&(x, y)| (x / self.px, y)), scratch);
        let fm = &stack[map];
        out.clear();
        for &(x, y) in coords {
            out.push(fm[(x, y)]);
        }
        Ok(())
    }

    /// Mode (e) gather read returning a fresh `Vec` (thin wrapper over
    /// [`NeuronBuffer::read_gather_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_gather(
        &self,
        map: usize,
        coords: &[(usize, usize)],
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        self.read_gather_into(map, coords, stats, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Charge-only form of [`NeuronBuffer::read_tile_into`]: tallies the
    /// same mode, byte count, and bank-conflict cycles without moving any
    /// data. The analytic fast path (see `exec::window`) computes PE
    /// inputs directly from the loaded stack and uses these variants to
    /// keep the access statistics bit-identical to the cycle-accurate
    /// sweep.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn charge_tile_read(
        &self,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
    ) -> Result<(), EmptyBufferError> {
        self.loaded()?;
        let mode = if sx == 1 && sy == 1 {
            if self.bank_group_of(x0) == 0 {
                ReadMode::A
            } else {
                ReadMode::B
            }
        } else {
            ReadMode::E
        };
        stats.nbin_read(mode, (w * h * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (w, h), (sx, sy), scratch);
        Ok(())
    }

    /// Charge-only form of [`NeuronBuffer::read_row_into`] (see
    /// [`NeuronBuffer::charge_tile_read`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn charge_row_read(
        &self,
        (x0, y0): (usize, usize),
        n: usize,
        sx: usize,
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
    ) -> Result<(), EmptyBufferError> {
        debug_assert!(
            n <= self.px,
            "mode (c) reads at most Px={} neurons",
            self.px
        );
        self.loaded()?;
        let mode = if sx == 1 { ReadMode::C } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (n, 1), (sx, 1), scratch);
        Ok(())
    }

    /// Charge-only form of [`NeuronBuffer::read_col_into`] (see
    /// [`NeuronBuffer::charge_tile_read`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn charge_col_read(
        &self,
        (x0, y0): (usize, usize),
        n: usize,
        sy: usize,
        stats: &mut LayerStats,
        scratch: &mut ReadScratch,
    ) -> Result<(), EmptyBufferError> {
        debug_assert!(
            n <= self.py,
            "mode (f) reads at most Py={} neurons",
            self.py
        );
        self.loaded()?;
        let mode = if sy == 1 { ReadMode::F } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles += self.rect_extra_cycles((x0, y0), (1, n), (1, sy), scratch);
        Ok(())
    }

    /// Charge-only form of [`NeuronBuffer::read_single`]: `n` mode (d)
    /// scalar reads (see [`NeuronBuffer::charge_tile_read`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn charge_single_reads(
        &self,
        n: u64,
        stats: &mut LayerStats,
    ) -> Result<(), EmptyBufferError> {
        self.loaded()?;
        stats.nbin.read_accesses += n;
        stats.nbin.read_bytes += 2 * n;
        stats.reads_by_mode[ReadMode::D as usize] += n;
        Ok(())
    }

    /// Starts collecting a new output layer of `count` maps of `w × h`,
    /// recycling the storage of a previously retired stack when one is
    /// available.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the output layer exceeds capacity.
    pub fn begin_output(&mut self, w: usize, h: usize, count: usize) -> Result<(), CapacityError> {
        let needed = w * h * count * 2;
        if needed > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "NB (output)",
                needed,
                available: self.capacity_bytes,
            });
        }
        let mut recycled = self.spare.take().unwrap_or_else(|| MapStack::new(w, h));
        recycled.refill_recycling(w, h, count, Fx::ZERO, &mut self.pool);
        self.out = Some(recycled);
        self.out_written = 0;
        self.write_groups = [0, 0];
        Ok(())
    }

    /// Block write (§7.1): stores an `w × h` block of results whose
    /// top-left output coordinate is `(x0, y0)` — the output register array
    /// flushing after all `Px × Py` PEs finish. The block lands in the bank
    /// group given by its column parity (Fig. 11), which is recorded for
    /// invariant checks.
    ///
    /// # Panics
    ///
    /// Panics if no output is begun or the block exceeds the output map.
    pub fn write_block(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        values: &[Fx],
        stats: &mut LayerStats,
    ) {
        assert_eq!(values.len(), w * h, "block payload mismatch");
        let group = self.bank_group_of(x0);
        self.write_groups[group] += 1;
        let out = self.out.as_mut().expect("write before begin_output");
        let target = out.get_mut(map).expect("output map out of range");
        for j in 0..h {
            for i in 0..w {
                target[(x0 + i, y0 + j)] = values[j * w + i];
            }
        }
        self.out_written += (w * h) as u64;
        stats.nbout.write((w * h * 2) as u64);
    }

    /// Scalar-group write: stores one value into each of `values.len()`
    /// consecutive `1 × 1` output maps starting at `start_map` — how a
    /// classifier layer's output register array flushes a PE group's
    /// results in a single write (§8.3).
    ///
    /// # Panics
    ///
    /// Panics if no output is begun, a map index is out of range, or the
    /// output maps are not `1 × 1`.
    pub fn write_scalar_group(&mut self, start_map: usize, values: &[Fx], stats: &mut LayerStats) {
        let out = self.out.as_mut().expect("write before begin_output");
        assert_eq!(out.map_dims(), (1, 1), "scalar writes need 1x1 maps");
        for (i, &v) in values.iter().enumerate() {
            out.get_mut(start_map + i).expect("output map out of range")[(0, 0)] = v;
        }
        self.out_written += values.len() as u64;
        self.write_groups[0] += 1;
        stats.nbout.write((values.len() * 2) as u64);
    }

    /// Finishes the output layer and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if no output was begun.
    ///
    /// # Panics
    ///
    /// Panics if not every output neuron was written exactly once in
    /// aggregate (coverage check).
    pub fn finish_output(&mut self) -> Result<MapStack<Fx>, EmptyBufferError> {
        let out = self.out.take().ok_or(EmptyBufferError {
            buffer: "NB (output role)",
        })?;
        assert_eq!(
            self.out_written as usize,
            out.neuron_count(),
            "output coverage mismatch"
        );
        Ok(out)
    }

    /// Finishes the output layer and installs it as this buffer's *input*
    /// contents in place — the NBin/NBout role swap of §5: after
    /// [`finish_output_into_input`](Self::finish_output_into_input) the
    /// caller swaps which physical buffer plays the NBin role, so the
    /// layer handoff costs zero copies (versus
    /// [`finish_output`](Self::finish_output) + [`load`](Self::load)).
    /// The displaced input stack is retired into the recycle slot for the
    /// next [`begin_output`](Self::begin_output).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if no output was begun.
    ///
    /// # Panics
    ///
    /// Panics like [`finish_output`](Self::finish_output) if the output
    /// coverage is incomplete.
    pub fn finish_output_into_input(&mut self) -> Result<(), EmptyBufferError> {
        let out = self.finish_output()?;
        self.spare = self.stack.replace(out);
        Ok(())
    }

    /// Block-write counts per bank group `(group 0, group 1)` since the
    /// last [`NeuronBuffer::begin_output`].
    pub fn write_group_histogram(&self) -> [u64; 2] {
        self.write_groups
    }
}

/// The synapse buffer: `Py` banks holding every kernel and classifier
/// weight of the CNN (§6).
///
/// Weight *values* live in the [`shidiannao_cnn::Network`] the accelerator
/// executes; `SynapseBuffer` enforces the capacity constraint and meters
/// the read traffic the NFU generates, which is what the energy model
/// charges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynapseBuffer {
    capacity_bytes: usize,
    loaded_bytes: usize,
}

impl SynapseBuffer {
    /// Creates an empty synapse buffer.
    pub fn new(capacity_bytes: usize) -> SynapseBuffer {
        SynapseBuffer {
            capacity_bytes,
            loaded_bytes: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Registers the CNN's full synapse footprint (all layers at once, §6).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the synapses exceed capacity.
    pub fn load(&mut self, synapse_bytes: usize) -> Result<(), CapacityError> {
        if synapse_bytes > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "SB",
                needed: synapse_bytes,
                available: self.capacity_bytes,
            });
        }
        self.loaded_bytes = synapse_bytes;
        Ok(())
    }

    /// Bytes currently resident.
    #[inline]
    pub fn loaded_bytes(&self) -> usize {
        self.loaded_bytes
    }

    /// One broadcast kernel-value read (convolutional layers read a single
    /// synapse per cycle and share it across all PEs, §8.1). Already
    /// allocation-free: the value itself comes from the [`SynapseStore`]'s
    /// indexed tables; this meters the SRAM traffic.
    ///
    /// [`SynapseStore`]: crate::SynapseStore
    #[inline]
    pub fn read_broadcast(&self, stats: &mut LayerStats) {
        stats.sb.read(2);
    }

    /// One wide read of `n` synapses (classifier layers read `Px × Py`
    /// different weights per cycle, §8.3).
    #[inline]
    pub fn read_wide(&self, n: usize, stats: &mut LayerStats) {
        stats.sb.read((n * 2) as u64);
    }

    /// `count` wide reads of `n` synapses each, batched (the analytic
    /// classifier path charges a whole group's weight stream at once).
    #[inline]
    pub fn read_wide_burst(&self, n: usize, count: u64, stats: &mut LayerStats) {
        stats.sb.read_accesses += count;
        stats.sb.read_bytes += count * (n * 2) as u64;
    }
}

/// The instruction buffer and decoder front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstructionBuffer {
    capacity_bytes: usize,
    loaded_bytes: usize,
}

impl InstructionBuffer {
    /// Creates an empty instruction buffer.
    pub fn new(capacity_bytes: usize) -> InstructionBuffer {
        InstructionBuffer {
            capacity_bytes,
            loaded_bytes: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Registers a compiled program's footprint.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the program exceeds capacity.
    pub fn load(&mut self, program_bytes: usize) -> Result<(), CapacityError> {
        if program_bytes > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "IB",
                needed: program_bytes,
                available: self.capacity_bytes,
            });
        }
        self.loaded_bytes = program_bytes;
        Ok(())
    }

    /// One instruction fetch (8 bytes holds the 61-bit word).
    #[inline]
    pub fn fetch(&self, stats: &mut LayerStats) {
        stats.ib.read(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_tensor::FeatureMap;

    fn stack_4x4() -> MapStack<Fx> {
        MapStack::from_fn(4, 4, 2, |m| {
            FeatureMap::from_fn(4, 4, move |x, y| {
                Fx::from_int((m * 100 + y * 10 + x) as i32 % 60)
            })
        })
    }

    fn nb() -> NeuronBuffer {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.load(stack_4x4()).unwrap();
        nb
    }

    #[test]
    fn load_respects_capacity() {
        let mut small = NeuronBuffer::new(2, 2, 8);
        let err = small.load(stack_4x4()).unwrap_err();
        assert_eq!(err.needed, 64);
        assert!(err.to_string().contains("overflow"));
        assert!(small.load_from(&stack_4x4()).is_err());
    }

    #[test]
    fn load_from_reuses_storage() {
        let mut nb = nb();
        let replacement = MapStack::filled(3, 3, 1, Fx::from_int(5));
        nb.load_from(&replacement).unwrap();
        assert_eq!(nb.contents().unwrap(), &replacement);
    }

    #[test]
    fn tile_read_is_row_major_and_counted() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let tile = nb.read_tile(0, (1, 1), (2, 2), (1, 1), &mut s).unwrap();
        assert_eq!(
            tile,
            vec![
                Fx::from_int(11),
                Fx::from_int(12),
                Fx::from_int(21),
                Fx::from_int(22)
            ]
        );
        assert_eq!(s.nbin.read_bytes, 8);
        assert_eq!(s.reads_by_mode[ReadMode::A as usize], 1);
    }

    #[test]
    fn tile_mode_depends_on_group_and_stride() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        nb.read_tile(0, (2, 0), (2, 2), (1, 1), &mut s).unwrap(); // x0=2, px=2 → group 1
        assert_eq!(s.reads_by_mode[ReadMode::B as usize], 1);
        nb.read_tile(0, (0, 0), (2, 2), (2, 2), &mut s).unwrap(); // strided
        assert_eq!(s.reads_by_mode[ReadMode::E as usize], 1);
    }

    #[test]
    fn strided_tile_gathers_correctly() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let tile = nb.read_tile(0, (0, 0), (2, 2), (2, 2), &mut s).unwrap();
        assert_eq!(
            tile,
            vec![
                Fx::from_int(0),
                Fx::from_int(2),
                Fx::from_int(20),
                Fx::from_int(22)
            ]
        );
    }

    #[test]
    fn row_and_col_reads() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let row = nb.read_row(1, (0, 2), 2, 1, &mut s).unwrap();
        assert_eq!(row, vec![Fx::from_int(0), Fx::from_int(1)]); // 120%60, 121%60
        let col = nb.read_col(0, (3, 0), 2, 1, &mut s).unwrap();
        assert_eq!(col, vec![Fx::from_int(3), Fx::from_int(13)]);
        assert_eq!(s.reads_by_mode[ReadMode::C as usize], 1);
        assert_eq!(s.reads_by_mode[ReadMode::F as usize], 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "at most Px")]
    fn row_read_bounded_by_bank_width() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let _ = nb.read_row(0, (0, 0), 3, 1, &mut s);
    }

    #[test]
    fn single_read_uses_flat_index() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        // flat 17 → map 1, position (1, 0) → value (100+1)%60 = 41.
        assert_eq!(nb.read_single(17, &mut s).unwrap(), Fx::from_int(41));
        assert_eq!(s.reads_by_mode[ReadMode::D as usize], 1);
        assert_eq!(s.nbin.read_bytes, 2);
    }

    #[test]
    fn gather_counts_one_access() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let vals = nb.read_gather(0, &[(0, 0), (3, 3)], &mut s).unwrap();
        assert_eq!(vals, vec![Fx::from_int(0), Fx::from_int(33)]);
        assert_eq!(s.nbin.read_accesses, 1);
        assert_eq!(s.nbin.read_bytes, 4);
    }

    #[test]
    fn into_reads_match_vec_reads() {
        let nb = nb();
        let mut s1 = LayerStats::new("vec");
        let mut s2 = LayerStats::new("vec");
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();

        let want = nb.read_tile(0, (0, 1), (2, 3), (1, 1), &mut s1).unwrap();
        nb.read_tile_into(0, (0, 1), (2, 3), (1, 1), &mut s2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, want);

        let want = nb.read_tile(1, (0, 0), (2, 2), (2, 1), &mut s1).unwrap();
        nb.read_tile_into(1, (0, 0), (2, 2), (2, 1), &mut s2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, want);

        let want = nb.read_row(0, (1, 2), 2, 1, &mut s1).unwrap();
        nb.read_row_into(0, (1, 2), 2, 1, &mut s2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, want);

        let want = nb.read_col(1, (2, 0), 2, 2, &mut s1).unwrap();
        nb.read_col_into(1, (2, 0), 2, 2, &mut s2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, want);

        let coords = [(0, 0), (2, 1), (2, 1), (3, 3)];
        let want = nb.read_gather(0, &coords, &mut s1).unwrap();
        nb.read_gather_into(0, &coords, &mut s2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, want);
        assert_eq!(s1, s2);
    }

    #[test]
    fn into_reads_meter_identically() {
        let nb = nb();
        let mut s1 = LayerStats::new("t");
        let mut s2 = LayerStats::new("t");
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        let _ = nb.read_tile(0, (1, 0), (2, 4), (1, 1), &mut s1).unwrap();
        let _ = nb.read_gather(0, &[(0, 0), (0, 1), (2, 0)], &mut s1);
        nb.read_tile_into(0, (1, 0), (2, 4), (1, 1), &mut s2, &mut scratch, &mut out)
            .unwrap();
        nb.read_gather_into(
            0,
            &[(0, 0), (0, 1), (2, 0)],
            &mut s2,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(s1, s2);
        assert_ne!(s1.bank_conflict_cycles, 0);
    }

    #[test]
    fn write_blocks_cover_output_and_track_groups() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.begin_output(4, 2, 1).unwrap();
        let mut s = LayerStats::new("t");
        let vals: Vec<Fx> = (0..4).map(Fx::from_int).collect();
        nb.write_block(0, (0, 0), (2, 2), &vals, &mut s);
        nb.write_block(0, (2, 0), (2, 2), &vals, &mut s);
        assert_eq!(nb.write_group_histogram(), [1, 1]);
        let out = nb.finish_output().unwrap();
        assert_eq!(out[0][(0, 0)], Fx::from_int(0));
        assert_eq!(out[0][(3, 1)], Fx::from_int(3));
        assert_eq!(s.nbout.write_bytes, 16);
    }

    #[test]
    fn role_swap_recycles_retired_stacks() {
        let mut nb = nb();
        let mut s = LayerStats::new("t");
        nb.begin_output(1, 1, 1).unwrap();
        nb.write_block(0, (0, 0), (1, 1), &[Fx::from_int(9)], &mut s);
        nb.finish_output_into_input().unwrap();
        // The displaced 4x4 input stack is now the recycle slot; the next
        // begin_output reshapes it in place.
        assert!(nb.spare.is_some());
        nb.begin_output(2, 2, 3).unwrap();
        assert!(nb.spare.is_none());
        let out = nb.out.as_ref().unwrap();
        assert_eq!(out.map_dims(), (2, 2));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|m| m.iter().all(|&v| v == Fx::ZERO)));
        assert_eq!(nb.contents().unwrap()[0][(0, 0)], Fx::from_int(9));
    }

    #[test]
    #[should_panic(expected = "coverage mismatch")]
    fn finish_requires_full_coverage() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.begin_output(4, 4, 1).unwrap();
        let mut s = LayerStats::new("t");
        nb.write_block(0, (0, 0), (2, 2), &[Fx::ZERO; 4], &mut s);
        let _ = nb.finish_output();
    }

    #[test]
    fn output_capacity_enforced() {
        let mut nb = NeuronBuffer::new(2, 2, 8);
        assert!(nb.begin_output(4, 4, 1).is_err());
    }

    #[test]
    fn sb_meters_reads_and_capacity() {
        let mut sb = SynapseBuffer::new(64);
        assert!(sb.load(64).is_ok());
        assert_eq!(sb.loaded_bytes(), 64);
        assert!(sb.load(65).is_err());
        let mut s = LayerStats::new("t");
        sb.read_broadcast(&mut s);
        sb.read_wide(64, &mut s);
        assert_eq!(s.sb.read_accesses, 2);
        assert_eq!(s.sb.read_bytes, 130);
    }

    #[test]
    fn ib_meters_fetches() {
        let mut ib = InstructionBuffer::new(16);
        assert!(ib.load(16).is_ok());
        assert!(ib.load(17).is_err());
        let mut s = LayerStats::new("t");
        ib.fetch(&mut s);
        assert_eq!(s.ib.read_bytes, 8);
        assert_eq!(ib.capacity_bytes(), 16);
    }

    #[test]
    fn reads_before_load_are_typed_errors() {
        let nb = NeuronBuffer::new(2, 2, 4096);
        let mut s = LayerStats::new("t");
        let err = nb.read_tile(0, (0, 0), (2, 2), (1, 1), &mut s).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        assert!(nb.read_row(0, (0, 0), 2, 1, &mut s).is_err());
        assert!(nb.read_col(0, (0, 0), 2, 1, &mut s).is_err());
        assert!(nb.read_single(0, &mut s).is_err());
        assert!(nb.read_gather(0, &[(0, 0)], &mut s).is_err());
        // No access was metered for a failed read.
        assert_eq!(s.nbin.read_bytes, 0);
    }

    #[test]
    fn finish_without_begin_is_a_typed_error() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        assert!(nb.finish_output().is_err());
        assert!(nb.finish_output_into_input().is_err());
    }

    #[test]
    fn take_and_contents() {
        let mut nb = nb();
        assert!(nb.contents().is_some());
        let s = nb.take().unwrap();
        assert_eq!(s.len(), 2);
        assert!(nb.contents().is_none());
    }
}
