//! The on-chip SRAM buffers: NBin/NBout neuron buffers with the six-mode
//! NB controller (Figs. 9–11), the synapse buffer, and the instruction
//! buffer.

use crate::stats::{LayerStats, ReadMode};
use core::fmt;
use shidiannao_fixed::Fx;
use shidiannao_tensor::MapStack;

/// Error raised when data does not fit an on-chip buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityError {
    /// Which buffer overflowed.
    pub buffer: &'static str,
    /// Bytes required.
    pub needed: usize,
    /// Bytes available.
    pub available: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} overflow: need {} bytes but only {} available",
            self.buffer, self.needed, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// Error raised when a buffer is read (or finished) in a state that holds
/// no data — e.g. a read before any [`NeuronBuffer::load`], or taking an
/// output after a failed load left the buffer empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptyBufferError {
    /// Which buffer (and role) was empty.
    pub buffer: &'static str,
}

impl fmt::Display for EmptyBufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is empty: read before a successful load", self.buffer)
    }
}

impl std::error::Error for EmptyBufferError {}

/// A neuron buffer (NBin or NBout) with its controller.
///
/// The physical organisation follows §6 / Fig. 11: `2 × Py` banks of
/// `Px × 2` bytes width; a feature-map row is striped across one bank group
/// with `Px`-column segments alternating between group 0 and group 1, and
/// bank index `y mod Py` within the group. The controller exposes the six
/// read modes of Fig. 10 and the block write mode of §7.1; every access is
/// tallied into [`LayerStats`].
#[derive(Clone, Debug, PartialEq)]
pub struct NeuronBuffer {
    px: usize,
    py: usize,
    capacity_bytes: usize,
    stack: Option<MapStack<Fx>>,
    // Output under construction: map dims + write coverage tracking.
    out: Option<MapStack<Fx>>,
    out_written: u64,
    // Bank-group usage histogram for the Fig. 11 write-parity invariant.
    write_groups: [u64; 2],
}

/// Serialization penalty of one banked access: the distinct
/// `(column segment, row)` SRAM words a request touches are served in
/// parallel across banks, but words mapping to the same bank — same
/// segment parity (bank group) and same `row mod Py` — share a port and
/// serialize. Returns the extra cycles beyond the first.
fn bank_extra_cycles(py: usize, words: impl Iterator<Item = (usize, usize)>) -> u64 {
    let mut distinct: Vec<(usize, usize)> = words.collect();
    distinct.sort_unstable();
    distinct.dedup();
    let mut loads = std::collections::HashMap::new();
    for (seg, y) in distinct {
        *loads.entry((seg % 2, y % py)).or_insert(0u64) += 1;
    }
    loads.values().copied().max().unwrap_or(1).saturating_sub(1)
}

impl NeuronBuffer {
    /// Creates an empty buffer for a `Px × Py` NFU.
    pub fn new(px: usize, py: usize, capacity_bytes: usize) -> NeuronBuffer {
        NeuronBuffer {
            px,
            py,
            capacity_bytes,
            stack: None,
            out: None,
            out_written: 0,
            write_groups: [0, 0],
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Loads a whole layer's neurons (role handoff or sensor streaming).
    /// No access cost is charged — charging the producer is the caller's
    /// job.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the stack exceeds capacity.
    pub fn load(&mut self, stack: MapStack<Fx>) -> Result<(), CapacityError> {
        let needed = stack.neuron_count() * 2;
        if needed > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "NB",
                needed,
                available: self.capacity_bytes,
            });
        }
        self.stack = Some(stack);
        Ok(())
    }

    /// The currently loaded layer, if any.
    pub fn contents(&self) -> Option<&MapStack<Fx>> {
        self.stack.as_ref()
    }

    /// Removes and returns the loaded layer.
    pub fn take(&mut self) -> Option<MapStack<Fx>> {
        self.stack.take()
    }

    fn loaded(&self) -> Result<&MapStack<Fx>, EmptyBufferError> {
        self.stack.as_ref().ok_or(EmptyBufferError {
            buffer: "NB (input role)",
        })
    }

    /// The bank group (0 or 1) a column index belongs to (Fig. 11).
    #[inline]
    pub fn bank_group_of(&self, x: usize) -> usize {
        (x / self.px) % 2
    }

    /// Mode (a)/(b) (or (e) when strided): read a `w × h` tile of neurons
    /// whose top-left input coordinate is `(x0, y0)`, consecutive PEs
    /// `stride` apart. Returns row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_tile(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let stack = self.loaded()?;
        let mode = if sx == 1 && sy == 1 {
            if self.bank_group_of(x0) == 0 {
                ReadMode::A
            } else {
                ReadMode::B
            }
        } else {
            ReadMode::E
        };
        stats.nbin_read(mode, (w * h * 2) as u64);
        stats.bank_conflict_cycles += bank_extra_cycles(
            self.py,
            (0..h)
                .flat_map(|j| (0..w).map(move |i| (i, j)))
                .map(|(i, j)| ((x0 + i * sx) / self.px, y0 + j * sy)),
        );
        let mut out = Vec::with_capacity(w * h);
        for j in 0..h {
            for i in 0..w {
                out.push(stack[map][(x0 + i * sx, y0 + j * sy)]);
            }
        }
        Ok(out)
    }

    /// Mode (c): read up to `Px` neurons of one row from a single bank.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the bank width `Px`.
    pub fn read_row(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sx: usize,
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        assert!(
            n <= self.px,
            "mode (c) reads at most Px={} neurons",
            self.px
        );
        let stack = self.loaded()?;
        let mode = if sx == 1 { ReadMode::C } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles +=
            bank_extra_cycles(self.py, (0..n).map(|i| ((x0 + i * sx) / self.px, y0)));
        Ok((0..n).map(|i| stack[map][(x0 + i * sx, y0)]).collect())
    }

    /// Mode (f): read one neuron per bank — a column of up to `Py` neurons.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the bank-group height `Py`.
    pub fn read_col(
        &self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sy: usize,
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        assert!(
            n <= self.py,
            "mode (f) reads at most Py={} neurons",
            self.py
        );
        let stack = self.loaded()?;
        let mode = if sy == 1 { ReadMode::F } else { ReadMode::E };
        stats.nbin_read(mode, (n * 2) as u64);
        stats.bank_conflict_cycles +=
            bank_extra_cycles(self.py, (0..n).map(|j| (x0 / self.px, y0 + j * sy)));
        Ok((0..n).map(|j| stack[map][(x0, y0 + j * sy)]).collect())
    }

    /// Mode (d): read a single neuron by flat (map-major, row-major) index
    /// — the classifier-layer broadcast read.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_single(&self, flat: usize, stats: &mut LayerStats) -> Result<Fx, EmptyBufferError> {
        let stack = self.loaded()?;
        let per_map = stack.width() * stack.height();
        let map = flat / per_map;
        let rem = flat % per_map;
        stats.nbin_read(ReadMode::D, 2);
        Ok(stack[map][(rem % stack.width(), rem / stack.width())])
    }

    /// Mode (e): gather arbitrary strided coordinates (pooling windows);
    /// one access delivering `coords.len()` neurons.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if the buffer holds no input layer.
    pub fn read_gather(
        &self,
        map: usize,
        coords: &[(usize, usize)],
        stats: &mut LayerStats,
    ) -> Result<Vec<Fx>, EmptyBufferError> {
        let stack = self.loaded()?;
        stats.nbin_read(ReadMode::E, (coords.len() * 2) as u64);
        stats.bank_conflict_cycles +=
            bank_extra_cycles(self.py, coords.iter().map(|&(x, y)| (x / self.px, y)));
        Ok(coords.iter().map(|&(x, y)| stack[map][(x, y)]).collect())
    }

    /// Starts collecting a new output layer of `count` maps of `w × h`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the output layer exceeds capacity.
    pub fn begin_output(&mut self, w: usize, h: usize, count: usize) -> Result<(), CapacityError> {
        let needed = w * h * count * 2;
        if needed > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "NB (output)",
                needed,
                available: self.capacity_bytes,
            });
        }
        self.out = Some(MapStack::filled(w, h, count, Fx::ZERO));
        self.out_written = 0;
        self.write_groups = [0, 0];
        Ok(())
    }

    /// Block write (§7.1): stores an `w × h` block of results whose
    /// top-left output coordinate is `(x0, y0)` — the output register array
    /// flushing after all `Px × Py` PEs finish. The block lands in the bank
    /// group given by its column parity (Fig. 11), which is recorded for
    /// invariant checks.
    ///
    /// # Panics
    ///
    /// Panics if no output is begun or the block exceeds the output map.
    pub fn write_block(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        values: &[Fx],
        stats: &mut LayerStats,
    ) {
        assert_eq!(values.len(), w * h, "block payload mismatch");
        let group = self.bank_group_of(x0);
        self.write_groups[group] += 1;
        let out = self.out.as_mut().expect("write before begin_output");
        let target = out.get_mut(map).expect("output map out of range");
        for j in 0..h {
            for i in 0..w {
                target[(x0 + i, y0 + j)] = values[j * w + i];
            }
        }
        self.out_written += (w * h) as u64;
        stats.nbout.write((w * h * 2) as u64);
    }

    /// Scalar-group write: stores one value into each of `values.len()`
    /// consecutive `1 × 1` output maps starting at `start_map` — how a
    /// classifier layer's output register array flushes a PE group's
    /// results in a single write (§8.3).
    ///
    /// # Panics
    ///
    /// Panics if no output is begun, a map index is out of range, or the
    /// output maps are not `1 × 1`.
    pub fn write_scalar_group(&mut self, start_map: usize, values: &[Fx], stats: &mut LayerStats) {
        let out = self.out.as_mut().expect("write before begin_output");
        assert_eq!(out.map_dims(), (1, 1), "scalar writes need 1x1 maps");
        for (i, &v) in values.iter().enumerate() {
            out.get_mut(start_map + i).expect("output map out of range")[(0, 0)] = v;
        }
        self.out_written += values.len() as u64;
        self.write_groups[0] += 1;
        stats.nbout.write((values.len() * 2) as u64);
    }

    /// Finishes the output layer and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if no output was begun.
    ///
    /// # Panics
    ///
    /// Panics if not every output neuron was written exactly once in
    /// aggregate (coverage check).
    pub fn finish_output(&mut self) -> Result<MapStack<Fx>, EmptyBufferError> {
        let out = self.out.take().ok_or(EmptyBufferError {
            buffer: "NB (output role)",
        })?;
        assert_eq!(
            self.out_written as usize,
            out.neuron_count(),
            "output coverage mismatch"
        );
        Ok(out)
    }

    /// Finishes the output layer and installs it as this buffer's *input*
    /// contents in place — the NBin/NBout role swap of §5: after
    /// [`finish_output_into_input`](Self::finish_output_into_input) the
    /// caller swaps which physical buffer plays the NBin role, so the
    /// layer handoff costs zero copies (versus
    /// [`finish_output`](Self::finish_output) + [`load`](Self::load)).
    ///
    /// # Errors
    ///
    /// Returns [`EmptyBufferError`] if no output was begun.
    ///
    /// # Panics
    ///
    /// Panics like [`finish_output`](Self::finish_output) if the output
    /// coverage is incomplete.
    pub fn finish_output_into_input(&mut self) -> Result<(), EmptyBufferError> {
        let out = self.finish_output()?;
        self.stack = Some(out);
        Ok(())
    }

    /// Block-write counts per bank group `(group 0, group 1)` since the
    /// last [`NeuronBuffer::begin_output`].
    pub fn write_group_histogram(&self) -> [u64; 2] {
        self.write_groups
    }
}

/// The synapse buffer: `Py` banks holding every kernel and classifier
/// weight of the CNN (§6).
///
/// Weight *values* live in the [`shidiannao_cnn::Network`] the accelerator
/// executes; `SynapseBuffer` enforces the capacity constraint and meters
/// the read traffic the NFU generates, which is what the energy model
/// charges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynapseBuffer {
    capacity_bytes: usize,
    loaded_bytes: usize,
}

impl SynapseBuffer {
    /// Creates an empty synapse buffer.
    pub fn new(capacity_bytes: usize) -> SynapseBuffer {
        SynapseBuffer {
            capacity_bytes,
            loaded_bytes: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Registers the CNN's full synapse footprint (all layers at once, §6).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the synapses exceed capacity.
    pub fn load(&mut self, synapse_bytes: usize) -> Result<(), CapacityError> {
        if synapse_bytes > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "SB",
                needed: synapse_bytes,
                available: self.capacity_bytes,
            });
        }
        self.loaded_bytes = synapse_bytes;
        Ok(())
    }

    /// Bytes currently resident.
    #[inline]
    pub fn loaded_bytes(&self) -> usize {
        self.loaded_bytes
    }

    /// One broadcast kernel-value read (convolutional layers read a single
    /// synapse per cycle and share it across all PEs, §8.1).
    #[inline]
    pub fn read_broadcast(&self, stats: &mut LayerStats) {
        stats.sb.read(2);
    }

    /// One wide read of `n` synapses (classifier layers read `Px × Py`
    /// different weights per cycle, §8.3).
    #[inline]
    pub fn read_wide(&self, n: usize, stats: &mut LayerStats) {
        stats.sb.read((n * 2) as u64);
    }
}

/// The instruction buffer and decoder front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstructionBuffer {
    capacity_bytes: usize,
    loaded_bytes: usize,
}

impl InstructionBuffer {
    /// Creates an empty instruction buffer.
    pub fn new(capacity_bytes: usize) -> InstructionBuffer {
        InstructionBuffer {
            capacity_bytes,
            loaded_bytes: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Registers a compiled program's footprint.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the program exceeds capacity.
    pub fn load(&mut self, program_bytes: usize) -> Result<(), CapacityError> {
        if program_bytes > self.capacity_bytes {
            return Err(CapacityError {
                buffer: "IB",
                needed: program_bytes,
                available: self.capacity_bytes,
            });
        }
        self.loaded_bytes = program_bytes;
        Ok(())
    }

    /// One instruction fetch (8 bytes holds the 61-bit word).
    #[inline]
    pub fn fetch(&self, stats: &mut LayerStats) {
        stats.ib.read(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_tensor::FeatureMap;

    fn stack_4x4() -> MapStack<Fx> {
        MapStack::from_fn(4, 4, 2, |m| {
            FeatureMap::from_fn(4, 4, move |x, y| {
                Fx::from_int((m * 100 + y * 10 + x) as i32 % 60)
            })
        })
    }

    fn nb() -> NeuronBuffer {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.load(stack_4x4()).unwrap();
        nb
    }

    #[test]
    fn load_respects_capacity() {
        let mut small = NeuronBuffer::new(2, 2, 8);
        let err = small.load(stack_4x4()).unwrap_err();
        assert_eq!(err.needed, 64);
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn tile_read_is_row_major_and_counted() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let tile = nb.read_tile(0, (1, 1), (2, 2), (1, 1), &mut s).unwrap();
        assert_eq!(
            tile,
            vec![
                Fx::from_int(11),
                Fx::from_int(12),
                Fx::from_int(21),
                Fx::from_int(22)
            ]
        );
        assert_eq!(s.nbin.read_bytes, 8);
        assert_eq!(s.reads_by_mode[ReadMode::A as usize], 1);
    }

    #[test]
    fn tile_mode_depends_on_group_and_stride() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        nb.read_tile(0, (2, 0), (2, 2), (1, 1), &mut s).unwrap(); // x0=2, px=2 → group 1
        assert_eq!(s.reads_by_mode[ReadMode::B as usize], 1);
        nb.read_tile(0, (0, 0), (2, 2), (2, 2), &mut s).unwrap(); // strided
        assert_eq!(s.reads_by_mode[ReadMode::E as usize], 1);
    }

    #[test]
    fn strided_tile_gathers_correctly() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let tile = nb.read_tile(0, (0, 0), (2, 2), (2, 2), &mut s).unwrap();
        assert_eq!(
            tile,
            vec![
                Fx::from_int(0),
                Fx::from_int(2),
                Fx::from_int(20),
                Fx::from_int(22)
            ]
        );
    }

    #[test]
    fn row_and_col_reads() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let row = nb.read_row(1, (0, 2), 2, 1, &mut s).unwrap();
        assert_eq!(row, vec![Fx::from_int(0), Fx::from_int(1)]); // 120%60, 121%60
        let col = nb.read_col(0, (3, 0), 2, 1, &mut s).unwrap();
        assert_eq!(col, vec![Fx::from_int(3), Fx::from_int(13)]);
        assert_eq!(s.reads_by_mode[ReadMode::C as usize], 1);
        assert_eq!(s.reads_by_mode[ReadMode::F as usize], 1);
    }

    #[test]
    #[should_panic(expected = "at most Px")]
    fn row_read_bounded_by_bank_width() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let _ = nb.read_row(0, (0, 0), 3, 1, &mut s);
    }

    #[test]
    fn single_read_uses_flat_index() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        // flat 17 → map 1, position (1, 0) → value (100+1)%60 = 41.
        assert_eq!(nb.read_single(17, &mut s).unwrap(), Fx::from_int(41));
        assert_eq!(s.reads_by_mode[ReadMode::D as usize], 1);
        assert_eq!(s.nbin.read_bytes, 2);
    }

    #[test]
    fn gather_counts_one_access() {
        let nb = nb();
        let mut s = LayerStats::new("t");
        let vals = nb.read_gather(0, &[(0, 0), (3, 3)], &mut s).unwrap();
        assert_eq!(vals, vec![Fx::from_int(0), Fx::from_int(33)]);
        assert_eq!(s.nbin.read_accesses, 1);
        assert_eq!(s.nbin.read_bytes, 4);
    }

    #[test]
    fn write_blocks_cover_output_and_track_groups() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.begin_output(4, 2, 1).unwrap();
        let mut s = LayerStats::new("t");
        let vals: Vec<Fx> = (0..4).map(Fx::from_int).collect();
        nb.write_block(0, (0, 0), (2, 2), &vals, &mut s);
        nb.write_block(0, (2, 0), (2, 2), &vals, &mut s);
        assert_eq!(nb.write_group_histogram(), [1, 1]);
        let out = nb.finish_output().unwrap();
        assert_eq!(out[0][(0, 0)], Fx::from_int(0));
        assert_eq!(out[0][(3, 1)], Fx::from_int(3));
        assert_eq!(s.nbout.write_bytes, 16);
    }

    #[test]
    #[should_panic(expected = "coverage mismatch")]
    fn finish_requires_full_coverage() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        nb.begin_output(4, 4, 1).unwrap();
        let mut s = LayerStats::new("t");
        nb.write_block(0, (0, 0), (2, 2), &[Fx::ZERO; 4], &mut s);
        let _ = nb.finish_output();
    }

    #[test]
    fn output_capacity_enforced() {
        let mut nb = NeuronBuffer::new(2, 2, 8);
        assert!(nb.begin_output(4, 4, 1).is_err());
    }

    #[test]
    fn sb_meters_reads_and_capacity() {
        let mut sb = SynapseBuffer::new(64);
        assert!(sb.load(64).is_ok());
        assert_eq!(sb.loaded_bytes(), 64);
        assert!(sb.load(65).is_err());
        let mut s = LayerStats::new("t");
        sb.read_broadcast(&mut s);
        sb.read_wide(64, &mut s);
        assert_eq!(s.sb.read_accesses, 2);
        assert_eq!(s.sb.read_bytes, 130);
    }

    #[test]
    fn ib_meters_fetches() {
        let mut ib = InstructionBuffer::new(16);
        assert!(ib.load(16).is_ok());
        assert!(ib.load(17).is_err());
        let mut s = LayerStats::new("t");
        ib.fetch(&mut s);
        assert_eq!(s.ib.read_bytes, 8);
        assert_eq!(ib.capacity_bytes(), 16);
    }

    #[test]
    fn reads_before_load_are_typed_errors() {
        let nb = NeuronBuffer::new(2, 2, 4096);
        let mut s = LayerStats::new("t");
        let err = nb.read_tile(0, (0, 0), (2, 2), (1, 1), &mut s).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        assert!(nb.read_row(0, (0, 0), 2, 1, &mut s).is_err());
        assert!(nb.read_col(0, (0, 0), 2, 1, &mut s).is_err());
        assert!(nb.read_single(0, &mut s).is_err());
        assert!(nb.read_gather(0, &[(0, 0)], &mut s).is_err());
        // No access was metered for a failed read.
        assert_eq!(s.nbin.read_bytes, 0);
    }

    #[test]
    fn finish_without_begin_is_a_typed_error() {
        let mut nb = NeuronBuffer::new(2, 2, 4096);
        assert!(nb.finish_output().is_err());
        assert!(nb.finish_output_into_input().is_err());
    }

    #[test]
    fn take_and_contents() {
        let mut nb = nb();
        assert!(nb.contents().is_some());
        let s = nb.take().unwrap();
        assert_eq!(s.len(), 2);
        assert!(nb.contents().is_none());
    }
}
