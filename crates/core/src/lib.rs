//! Cycle-level simulator of the ShiDianNao CNN accelerator (ISCA 2015).
//!
//! This crate is the reproduction's primary contribution: a
//! microarchitectural model of the accelerator of *ShiDianNao: Shifting
//! Vision Processing Closer to the Sensor*, executed cycle by cycle:
//!
//! * [`Nfu`] — the `Px × Py` PE mesh with per-PE FIFOs and inter-PE data
//!   propagation (§5.1, Figs. 5–6),
//! * [`NeuronBuffer`] — banked NBin/NBout with the six NB-controller read
//!   modes and the block write mode (§6–§7.1, Figs. 9–11),
//! * [`Alu`] — 16-bit division and 16-segment piecewise-linear activation
//!   (§5.2),
//! * [`isa`] / [`compiler`] — the 61-bit instruction encoding and the
//!   network-to-program compiler (§7.2),
//! * [`Hfsm`] — the two-level hierarchical control FSM (Fig. 12),
//! * the §8 layer mappings (convolution per Fig. 13, pooling per Fig. 14,
//!   classifier, decomposed LRN/LCN per Figs. 15–16),
//! * [`energy`] / [`area`] — the Table 4 energy and area models.
//!
//! Execution is functionally **bit-identical** to the fixed-point golden
//! reference in `shidiannao-cnn`, while every cycle, SRAM access, FIFO
//! transfer, and PE operation is counted for the performance and energy
//! results (Figs. 7, 18, 19).
//!
//! # Examples
//!
//! ```
//! use shidiannao_cnn::zoo;
//! use shidiannao_core::{Accelerator, AcceleratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let network = zoo::lenet5().build(42)?;
//! let input = network.random_input(7);
//!
//! let accel = Accelerator::new(AcceleratorConfig::paper());
//! let run = accel.run(&network, &input)?;
//!
//! // Bit-identical to the golden reference.
//! assert_eq!(run.output(), network.forward_fixed(&input).output());
//! # Ok(())
//! # }
//! ```

// Library run paths report failures as typed errors (`RunError`,
// `EmptyBufferError`) rather than panicking; contract violations still use
// `assert!`/`.expect()` which these lints deliberately do not cover.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod area;
pub mod compiler;
pub mod energy;
pub mod isa;
pub mod trace;

mod accel;
mod alu;
mod buffer;
mod config;
mod exec;
mod hfsm;
mod nfu;
pub mod opt;
mod pe;
mod sb;
mod schedule;
mod stats;

pub use accel::{
    Accelerator, BatchRef, DeltaLoad, Inference, InferenceRef, NbResidency, PreparedNetwork,
    RunError, RunOutcome, Session,
};
pub use alu::Alu;
pub use buffer::{
    CapacityError, EmptyBufferError, InstructionBuffer, NeuronBuffer, ReadScratch, SynapseBuffer,
};
pub use config::{AcceleratorConfig, ConfigError};
pub use energy::{EnergyModel, EnergyReport, WeightPrecision};
pub use hfsm::{FirstState, Hfsm, SecondState, TransitionError};
pub use nfu::Nfu;
pub use opt::{OptConfig, OptReport};
pub use pe::{PeMut, PeRef};
pub use sb::SynapseStore;
pub use schedule::{LayerSchedule, NetworkSchedule};
pub use stats::{BufferTraffic, LayerStats, ReadMode, RunStats};

/// The shared value-reduction kernels (vectorized lane kernel + scalar
/// reference) — public so the microbenches can compare them in
/// isolation.
pub mod kernel {
    pub use crate::exec::values::{
        classifier_dot_raw, sum_to_raw, LaneKernel, ScalarKernel, ValueKernel,
    };
}

// Re-export the fault-injection vocabulary so downstream crates can drive
// fault campaigns without depending on `shidiannao-faults` directly.
pub use shidiannao_faults::{
    DegradePolicy, DetectedFault, FaultConfig, FaultPlan, FaultSite, FaultState, FaultStats,
    PeStuck, PeStuckTarget, ScanlineFault, SramProtection,
};
