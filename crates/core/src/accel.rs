//! The top-level accelerator: compile, load, execute, report.

use crate::alu::Alu;
use crate::buffer::{CapacityError, InstructionBuffer, NeuronBuffer, SynapseBuffer};
use crate::compiler::{self, CompileError, Program};
use crate::config::{AcceleratorConfig, ConfigError};
use crate::energy::{EnergyModel, EnergyReport};
use crate::exec::Engine;
use crate::hfsm::{FirstState, Hfsm};
use crate::nfu::Nfu;
use crate::sb::SynapseStore;
use crate::stats::{LayerStats, RunStats};
use core::fmt;
use shidiannao_cnn::Network;
use shidiannao_fixed::Fx;
use shidiannao_tensor::MapStack;

/// Error produced by [`Accelerator::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The configuration is invalid.
    Config(ConfigError),
    /// A layer or the CNN as a whole does not fit on chip (§6's sizing
    /// constraint).
    Capacity(CapacityError),
    /// The network cannot be lowered to the 61-bit ISA.
    Compile(CompileError),
    /// The input stack does not match the network's input shape.
    InputShape {
        /// What the network expects: `(maps, width, height)`.
        expected: (usize, usize, usize),
        /// What was provided.
        got: (usize, usize, usize),
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => e.fmt(f),
            RunError::Capacity(e) => e.fmt(f),
            RunError::Compile(e) => e.fmt(f),
            RunError::InputShape { expected, got } => write!(
                f,
                "input shape {got:?} does not match the network's {expected:?}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> RunError {
        RunError::Config(e)
    }
}

impl From<CapacityError> for RunError {
    fn from(e: CapacityError) -> RunError {
        RunError::Capacity(e)
    }
}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> RunError {
        RunError::Compile(e)
    }
}

/// The ShiDianNao accelerator simulator.
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::zoo;
/// use shidiannao_core::{Accelerator, AcceleratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?;
/// let accel = Accelerator::new(AcceleratorConfig::paper());
/// let run = accel.run(&net, &net.random_input(7))?;
/// assert_eq!(run.output().len(), net.output_count());
/// assert!(run.stats().cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AcceleratorConfig,
    energy_model: EnergyModel,
}

impl Accelerator {
    /// Creates an accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`AcceleratorConfig::validate`] to check first.
    pub fn new(config: AcceleratorConfig) -> Accelerator {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid accelerator configuration: {e}"));
        Accelerator {
            config,
            energy_model: EnergyModel::paper_65nm(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Replaces the energy model (e.g. a different process node).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy_model = model;
    }

    /// Compiles a network to its control program.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Compile`] if a dimension exceeds the ISA's
    /// field widths.
    pub fn compile(&self, network: &Network) -> Result<Program, RunError> {
        let program = compiler::compile(network)?;
        compiler::validate(&program, network)?;
        Ok(program)
    }

    /// Checks that a network fits on chip: every layer's neurons within
    /// NBin/NBout, all synapses within SB, the program within IB (§6).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Capacity`] naming the overflowing buffer.
    pub fn check_capacity(&self, network: &Network) -> Result<(), RunError> {
        let nb_cap = self.config.nbin_bytes.min(self.config.nbout_bytes);
        let input_bytes =
            network.input_maps() * network.input_dims().0 * network.input_dims().1 * 2;
        let mut max_layer = input_bytes;
        let mut synapse_bytes = 0;
        for layer in network.layers() {
            max_layer = max_layer.max(layer.out_neurons() * 2);
            // Synapses plus the per-output biases the SB image also holds.
            synapse_bytes += layer.synapse_count() * 2;
            synapse_bytes += match layer.body() {
                shidiannao_cnn::LayerBody::Conv { .. }
                | shidiannao_cnn::LayerBody::Fc { .. } => layer.out_maps() * 2,
                _ => 0,
            };
        }
        if max_layer > nb_cap {
            return Err(CapacityError {
                buffer: "NBin/NBout",
                needed: max_layer,
                available: nb_cap,
            }
            .into());
        }
        if synapse_bytes > self.config.sb_bytes {
            return Err(CapacityError {
                buffer: "SB",
                needed: synapse_bytes,
                available: self.config.sb_bytes,
            }
            .into());
        }
        let program = self.compile(network)?;
        if program.bytes() > self.config.ib_bytes {
            return Err(CapacityError {
                buffer: "IB",
                needed: program.bytes(),
                available: self.config.ib_bytes,
            }
            .into());
        }
        Ok(())
    }

    /// Executes one inference cycle-by-cycle.
    ///
    /// The input is streamed into NBin (charged as the Load phase), each
    /// layer runs under its §8 mapping, and NBin/NBout swap roles between
    /// layers. The result is bit-identical to
    /// [`Network::forward_fixed`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the input shape mismatches or the network
    /// does not fit on chip.
    pub fn run(&self, network: &Network, input: &MapStack<Fx>) -> Result<RunOutcome, RunError> {
        let expected = (
            network.input_maps(),
            network.input_dims().0,
            network.input_dims().1,
        );
        let got = (input.len(), input.width(), input.height());
        if expected != got {
            return Err(RunError::InputShape { expected, got });
        }
        self.check_capacity(network)?;
        let program = self.compile(network)?;

        let cfg = &self.config;
        let mut buf_a = NeuronBuffer::new(cfg.pe_cols, cfg.pe_rows, cfg.nbin_bytes);
        let mut buf_b = NeuronBuffer::new(cfg.pe_cols, cfg.pe_rows, cfg.nbout_bytes);
        let mut sb = SynapseBuffer::new(cfg.sb_bytes);
        let mut ib = InstructionBuffer::new(cfg.ib_bytes);
        let mut nfu = Nfu::new(cfg.pe_cols, cfg.pe_rows);
        let alu = Alu::new(cfg.alu_lanes);
        let mut hfsm = Hfsm::new();
        let mut stats = RunStats::new();

        let store = SynapseStore::load(network, cfg.sb_bytes)?
            .with_banking(cfg.pe_cols, cfg.pe_rows);
        sb.load(store.bytes())?;
        ib.load(program.bytes())?;

        // Load phase: the sensor/host streams the image into NBin at one
        // bank-width write per cycle.
        let mut load = LayerStats::new("Load");
        hfsm.enter(FirstState::Load).expect("HFSM: load");
        ib.fetch(&mut load);
        let input_bytes = input.neuron_count() * 2;
        let load_cycles = input_bytes.div_ceil(cfg.nb_bank_width_bytes()) as u64;
        load.cycles = load_cycles;
        load.nbin.write(input_bytes as u64);
        buf_a.load(input.clone())?;
        stats.push_layer(load);

        let mut layer_outputs = Vec::with_capacity(network.layers().len());
        for (i, layer) in network.layers().iter().enumerate() {
            let mut layer_stats = LayerStats::new(layer.label());
            let (ow, oh) = layer.out_dims();
            buf_b.begin_output(ow, oh, layer.out_maps())?;
            for _ in 0..program.layer_instruction_count(network, i) {
                ib.fetch(&mut layer_stats);
            }
            {
                let mut engine = Engine {
                    cfg,
                    nbin: &buf_a,
                    nbout: &mut buf_b,
                    sb: &sb,
                    store: &store,
                    layer_index: i,
                    nfu: &mut nfu,
                    alu: &alu,
                    hfsm: &mut hfsm,
                    stats: &mut layer_stats,
                };
                engine.run_layer(layer);
            }
            if cfg.model_bank_conflicts {
                // Conflicting banked requests serialize: the stall cycles
                // extend the layer with the whole mesh idle.
                layer_stats.cycles += layer_stats.bank_conflict_cycles;
                layer_stats.pe_total_slots +=
                    layer_stats.bank_conflict_cycles * cfg.pe_count() as u64;
            }
            let output = buf_b.finish_output();
            layer_outputs.push(output.clone());
            buf_a.load(output)?;
            stats.push_layer(layer_stats);
        }
        hfsm.enter(FirstState::End).expect("HFSM: end");

        let energy = self.energy_model.charge_run(&stats);
        Ok(RunOutcome {
            layer_outputs,
            stats,
            energy,
            frequency_ghz: cfg.frequency_ghz,
        })
    }
}

impl Default for Accelerator {
    fn default() -> Accelerator {
        Accelerator::new(AcceleratorConfig::paper())
    }
}

/// The result of one accelerator execution.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    layer_outputs: Vec<MapStack<Fx>>,
    stats: RunStats,
    energy: EnergyReport,
    frequency_ghz: f64,
}

impl RunOutcome {
    /// The final layer's output, flattened map-major (comparable to
    /// [`shidiannao_cnn::ForwardTrace::output`]).
    ///
    /// # Panics
    ///
    /// Panics if the network had no layers (impossible for built
    /// networks).
    pub fn output(&self) -> Vec<Fx> {
        self.layer_outputs
            .last()
            .expect("networks have at least one layer")
            .flatten()
    }

    /// Every layer's output stack, in execution order.
    pub fn layer_outputs(&self) -> &[MapStack<Fx>] {
        &self.layer_outputs
    }

    /// Execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Energy charged by the accelerator's model.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Per-layer energy breakdown (same order as
    /// [`RunStats::layers`](crate::RunStats::layers), Load phase first),
    /// charged with the paper's 65 nm model.
    pub fn layer_energies(&self) -> Vec<EnergyReport> {
        let model = crate::energy::EnergyModel::paper_65nm();
        self.stats.layers().iter().map(|l| model.charge(l)).collect()
    }

    /// Wall-clock seconds for this inference.
    pub fn seconds(&self) -> f64 {
        self.stats.seconds_at(self.frequency_ghz)
    }

    /// Average power in milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        self.energy
            .average_power_mw(self.stats.cycles(), self.frequency_ghz)
    }

    /// Sustained fixed-point GOP/s over the run: PE multiplies, adds, and
    /// comparisons plus ALU operations, divided by wall-clock time.
    /// Compare with [`AcceleratorConfig::peak_gops`] — the gap is the
    /// measured utilization loss.
    pub fn effective_gops(&self) -> f64 {
        let t = self.stats.total();
        let ops = t.pe_muls + t.pe_adds + t.pe_cmps + t.alu_acts + t.alu_divs;
        ops as f64 / self.seconds() / 1e9
    }
}
