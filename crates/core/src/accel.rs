//! The top-level accelerator: compile, load, execute, report.

use crate::alu::Alu;
use crate::buffer::{
    CapacityError, EmptyBufferError, InstructionBuffer, NeuronBuffer, SynapseBuffer,
};
use crate::compiler::{self, CompileError, Program};
use crate::config::{AcceleratorConfig, ConfigError};
use crate::energy::{EnergyModel, EnergyReport};
use crate::exec::{replay, Engine, Scratch};
use crate::hfsm::{FirstState, Hfsm};
use crate::nfu::Nfu;
use crate::sb::SynapseStore;
use crate::schedule::{self, LayerOverlay, NetworkSchedule, ScheduleRecorder};
use crate::stats::{LayerStats, RunStats};
use core::fmt;
use shidiannao_cnn::{LayerBody, Network};
use shidiannao_faults::{DetectedFault, FaultPlan, FaultSite, FaultState, FaultStats};
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};
use std::sync::Arc;

/// Error produced by [`Accelerator::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The configuration is invalid.
    Config(ConfigError),
    /// A layer or the CNN as a whole does not fit on chip (§6's sizing
    /// constraint).
    Capacity(CapacityError),
    /// The network cannot be lowered to the 61-bit ISA.
    Compile(CompileError),
    /// The input stack does not match the network's input shape.
    InputShape {
        /// What the network expects: `(maps, width, height)`.
        expected: (usize, usize, usize),
        /// What was provided.
        got: (usize, usize, usize),
    },
    /// A buffer was read (or drained) while holding no data — e.g. after
    /// a failed load.
    EmptyBuffer(EmptyBufferError),
    /// SRAM protection detected an uncorrectable error; the run aborted
    /// instead of silently corrupting data.
    FaultDetected(DetectedFault),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => e.fmt(f),
            RunError::Capacity(e) => e.fmt(f),
            RunError::Compile(e) => e.fmt(f),
            RunError::InputShape { expected, got } => write!(
                f,
                "input shape {got:?} does not match the network's {expected:?}"
            ),
            RunError::EmptyBuffer(e) => e.fmt(f),
            RunError::FaultDetected(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> RunError {
        RunError::Config(e)
    }
}

impl From<CapacityError> for RunError {
    fn from(e: CapacityError) -> RunError {
        RunError::Capacity(e)
    }
}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> RunError {
        RunError::Compile(e)
    }
}

impl From<EmptyBufferError> for RunError {
    fn from(e: EmptyBufferError) -> RunError {
        RunError::EmptyBuffer(e)
    }
}

impl From<DetectedFault> for RunError {
    fn from(e: DetectedFault) -> RunError {
        RunError::FaultDetected(e)
    }
}

/// The ShiDianNao accelerator simulator.
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::zoo;
/// use shidiannao_core::{Accelerator, AcceleratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?;
/// let accel = Accelerator::new(AcceleratorConfig::paper());
/// let run = accel.run(&net, &net.random_input(7))?;
/// assert_eq!(run.output().len(), net.output_count());
/// assert!(run.stats().cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AcceleratorConfig,
    energy_model: EnergyModel,
}

impl Accelerator {
    /// Creates an accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`Accelerator::try_new`] for a non-panicking construction.
    #[allow(clippy::panic)]
    pub fn new(config: AcceleratorConfig) -> Accelerator {
        Accelerator::try_new(config)
            .unwrap_or_else(|e| panic!("invalid accelerator configuration: {e}"))
    }

    /// Creates an accelerator, rejecting invalid configurations with a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration fails validation.
    pub fn try_new(config: AcceleratorConfig) -> Result<Accelerator, ConfigError> {
        config.validate()?;
        Ok(Accelerator {
            config,
            energy_model: EnergyModel::paper_65nm(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Replaces the energy model (e.g. a different process node).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy_model = model;
    }

    /// Compiles a network to its control program.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Compile`] if a dimension exceeds the ISA's
    /// field widths.
    pub fn compile(&self, network: &Network) -> Result<Program, RunError> {
        let program = compiler::compile(network)?;
        compiler::validate(&program, network)?;
        Ok(program)
    }

    /// Checks that a network fits on chip: every layer's neurons within
    /// NBin/NBout, all synapses within SB, the program within IB (§6).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Capacity`] naming the overflowing buffer.
    pub fn check_capacity(&self, network: &Network) -> Result<(), RunError> {
        self.check_data_capacity(network)?;
        let program = self.compile(network)?;
        self.check_ib_capacity(&program)
    }

    /// The NB/SB halves of the capacity check (no compilation needed).
    fn check_data_capacity(&self, network: &Network) -> Result<(), RunError> {
        let nb_cap = self.config.nbin_bytes.min(self.config.nbout_bytes);
        let input_bytes =
            network.input_maps() * network.input_dims().0 * network.input_dims().1 * 2;
        let mut max_layer = input_bytes;
        let mut synapse_bytes = 0;
        for layer in network.layers() {
            max_layer = max_layer.max(layer.out_neurons() * 2);
            // Synapses plus the per-output biases the SB image also holds.
            synapse_bytes += layer.synapse_count() * 2;
            synapse_bytes += match layer.body() {
                shidiannao_cnn::LayerBody::Conv { .. } | shidiannao_cnn::LayerBody::Fc { .. } => {
                    layer.out_maps() * 2
                }
                _ => 0,
            };
        }
        if max_layer > nb_cap {
            return Err(CapacityError {
                buffer: "NBin/NBout",
                needed: max_layer,
                available: nb_cap,
            }
            .into());
        }
        if synapse_bytes > self.config.sb_bytes {
            return Err(CapacityError {
                buffer: "SB",
                needed: synapse_bytes,
                available: self.config.sb_bytes,
            }
            .into());
        }
        Ok(())
    }

    /// The IB half of the capacity check.
    fn check_ib_capacity(&self, program: &Program) -> Result<(), RunError> {
        if program.bytes() > self.config.ib_bytes {
            return Err(CapacityError {
                buffer: "IB",
                needed: program.bytes(),
                available: self.config.ib_bytes,
            }
            .into());
        }
        Ok(())
    }

    /// Performs every per-network (input-independent) stage of an
    /// inference **once** — config validation happened in
    /// [`Accelerator::new`]; this adds the capacity check, compilation to
    /// the 61-bit program, and the banked synapse-store image — and
    /// returns a [`PreparedNetwork`] that executes inferences without
    /// repeating any of it.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Capacity`] or [`RunError::Compile`] exactly as
    /// [`Accelerator::run`] would.
    pub fn prepare(&self, network: &Network) -> Result<PreparedNetwork, RunError> {
        self.check_data_capacity(network)?;
        let program = self.compile(network)?;
        self.check_ib_capacity(&program)?;
        let store = SynapseStore::load(network, self.config.sb_bytes)?
            .with_banking(self.config.pe_cols, self.config.pe_rows);
        let layer_instruction_counts = (0..network.layers().len())
            .map(|i| program.layer_instruction_count(network, i))
            .collect();
        // `Layer::label` formats a fresh `String`; render each label once
        // here so steady-state inference only copies bytes into recycled
        // stats slots.
        let layer_labels = network.layers().iter().map(|l| l.label()).collect();
        let mut prepared = PreparedNetwork {
            config: self.config.clone(),
            energy_model: self.energy_model,
            network: network.clone(),
            program,
            store,
            layer_instruction_counts,
            layer_labels,
            schedule: Arc::new(NetworkSchedule::empty()),
            opt_schedule: Arc::new(NetworkSchedule::empty()),
            opt_report: crate::opt::OptReport::default(),
        };
        // Record the precompiled micro-op schedule: one instrumented run
        // with a recorder attached to the fault-filter hook points. The
        // control path is static (nothing depends on input data), so one
        // pass on an arbitrary well-shaped input captures every run's
        // control stream exactly.
        let schedule = {
            let input = prepared.network.random_input(0);
            let mut session = prepared.session();
            session.recorder = Some(Box::new(ScheduleRecorder::new()));
            session.execute(&input, None)?;
            session
                .recorder
                .take()
                .expect("the recording run does not detach the recorder")
                .into_schedule()
        };
        // Optimize the recorded schedule once (every pass on); sessions
        // replay the verbatim recording by default and opt in to the
        // optimized stream via `Session::set_optimized_replay`.
        let (opt_schedule, opt_report) = crate::opt::optimize(
            &schedule,
            &prepared.network,
            &prepared.config,
            &prepared.energy_model,
            &crate::opt::OptConfig::default(),
        );
        prepared.schedule = Arc::new(schedule);
        prepared.opt_schedule = Arc::new(opt_schedule);
        prepared.opt_report = opt_report;
        Ok(prepared)
    }

    /// Executes one inference cycle-by-cycle.
    ///
    /// The input is streamed into NBin (charged as the Load phase), each
    /// layer runs under its §8 mapping, and NBin/NBout swap roles between
    /// layers. The result is bit-identical to
    /// [`Network::forward_fixed`].
    ///
    /// This is a thin compatibility wrapper over [`Accelerator::prepare`]
    /// followed by [`PreparedNetwork::run`]; callers executing the same
    /// network more than once should hold on to the [`PreparedNetwork`]
    /// (and a [`Session`]) instead, so compilation and synapse-store
    /// banking happen once rather than per inference.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the input shape mismatches or the network
    /// does not fit on chip.
    pub fn run(&self, network: &Network, input: &MapStack<Fx>) -> Result<RunOutcome, RunError> {
        let expected = (
            network.input_maps(),
            network.input_dims().0,
            network.input_dims().1,
        );
        let got = (input.len(), input.width(), input.height());
        if expected != got {
            return Err(RunError::InputShape { expected, got });
        }
        self.prepare(network)?.run(input)
    }

    /// [`Accelerator::run`] under a fault plan (the legacy-path variant of
    /// [`PreparedNetwork::run_with_faults`]); identical faults fire on
    /// either path.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::FaultDetected`] when SRAM protection aborts the
    /// run, plus everything [`Accelerator::run`] can return.
    pub fn run_with_faults(
        &self,
        network: &Network,
        input: &MapStack<Fx>,
        plan: FaultPlan,
    ) -> Result<RunOutcome, RunError> {
        self.prepare(network)?.run_with_faults(input, plan)
    }
}

impl Default for Accelerator {
    fn default() -> Accelerator {
        Accelerator::new(AcceleratorConfig::paper())
    }
}

/// A network after every input-independent stage of an inference:
/// validated against the configuration's capacities, compiled to its
/// 61-bit program, and with its synapse-store image built and banked.
///
/// Produced by [`Accelerator::prepare`]. Executing through a
/// `PreparedNetwork` never recompiles or rebuilds the SB image
/// (assertable via [`crate::compiler::compile_calls`] and
/// [`SynapseStore::build_calls`]).
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::zoo;
/// use shidiannao_core::{Accelerator, AcceleratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?;
/// let prepared = Accelerator::new(AcceleratorConfig::paper()).prepare(&net)?;
/// let mut session = prepared.session();
/// for seed in 0..4 {
///     let run = session.run(&net.random_input(seed))?;
///     assert_eq!(run.output(), net.forward_fixed(&net.random_input(seed)).output());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PreparedNetwork {
    config: AcceleratorConfig,
    energy_model: EnergyModel,
    network: Network,
    program: Program,
    store: SynapseStore,
    layer_instruction_counts: Vec<usize>,
    layer_labels: Vec<String>,
    /// The precompiled micro-op schedule, shared (`Arc`) by every
    /// session — per-tenant control state is paid for once, not per
    /// session.
    schedule: Arc<NetworkSchedule>,
    /// The optimizer's rewrite of `schedule` (all passes of
    /// [`crate::opt::OptConfig::default`]), built once at prepare time;
    /// sessions swap it in via [`Session::set_optimized_replay`].
    opt_schedule: Arc<NetworkSchedule>,
    /// What the optimizer eliminated building `opt_schedule`.
    opt_report: crate::opt::OptReport,
}

impl PreparedNetwork {
    /// The configuration this network was prepared for.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The prepared network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The compiled control program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The banked synapse-store image.
    pub fn store(&self) -> &SynapseStore {
        &self.store
    }

    /// The energy model inferences will be charged with.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// The precompiled micro-op schedule (the `Arc` is exposed so
    /// callers can verify sharing: every open session holds one clone).
    pub fn schedule(&self) -> &Arc<NetworkSchedule> {
        &self.schedule
    }

    /// The optimizer's rewrite of the recorded schedule (all default
    /// passes), shared by every session that opts in via
    /// [`Session::set_optimized_replay`].
    pub fn optimized_schedule(&self) -> &Arc<NetworkSchedule> {
        &self.opt_schedule
    }

    /// Per-pass elimination counters from building the optimized
    /// schedule.
    pub fn optimizer_report(&self) -> &crate::opt::OptReport {
        &self.opt_report
    }

    /// Rebuilds the optimized schedule with an explicit pass subset
    /// (the default is every pass on) — how tests and benches exercise
    /// individual passes. Sessions opened afterwards see the new
    /// schedule; already-open sessions keep their `Arc` clone.
    pub fn reoptimize(&mut self, opt: &crate::opt::OptConfig) {
        let (sched, report) = crate::opt::optimize(
            &self.schedule,
            &self.network,
            &self.config,
            &self.energy_model,
            opt,
        );
        self.opt_schedule = Arc::new(sched);
        self.opt_report = report;
    }

    /// Opens a [`Session`]: NBin/NBout, SB, IB, the PE mesh, and the ALU
    /// are allocated (and SB/IB loaded) once, then reused by every
    /// inference run through it.
    pub fn session(&self) -> Session<'_> {
        self.session_with_faults(FaultPlan::none())
    }

    /// Opens a [`Session`] that executes under a seeded fault plan: SRAM
    /// reads are filtered through the plan, and the plan's stuck-at
    /// faults are installed in the PE mesh. A zero-rate plan behaves (and
    /// performs) exactly like [`PreparedNetwork::session`].
    pub fn session_with_faults(&self, plan: FaultPlan) -> Session<'_> {
        let cfg = &self.config;
        let mut sb = SynapseBuffer::new(cfg.sb_bytes);
        let mut ib = InstructionBuffer::new(cfg.ib_bytes);
        sb.load(self.store.bytes())
            .expect("SB capacity was verified by prepare");
        ib.load(self.program.bytes())
            .expect("IB capacity was verified by prepare");
        let mut nfu = Nfu::new(cfg.pe_cols, cfg.pe_rows);
        nfu.set_stuck_faults(|x, y| plan.pe_stuck(x, y));
        Session {
            prepared: self,
            schedule: Arc::clone(&self.schedule),
            nbin: NeuronBuffer::new(cfg.pe_cols, cfg.pe_rows, cfg.nbin_bytes),
            nbout: NeuronBuffer::new(cfg.pe_cols, cfg.pe_rows, cfg.nbout_bytes),
            sb,
            ib,
            nfu,
            alu: Alu::new(cfg.alu_lanes),
            faults: FaultState::new(plan),
            scratch: Scratch::default(),
            stats: RunStats::new(),
            map_bin: Vec::new(),
            last_cycles: 0,
            replay_enabled: true,
            optimized: false,
            overlays: Vec::new(),
            overlays_valid: false,
            pending_delta_bytes: None,
            recorder: None,
        }
    }

    /// Executes one inference through a fresh single-use [`Session`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InputShape`] when the input mismatches.
    pub fn run(&self, input: &MapStack<Fx>) -> Result<RunOutcome, RunError> {
        self.session().run(input)
    }

    /// Executes one inference under a fault plan through a fresh
    /// single-use [`Session`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::FaultDetected`] when SRAM protection aborts
    /// the run, plus everything [`PreparedNetwork::run`] can return.
    pub fn run_with_faults(
        &self,
        input: &MapStack<Fx>,
        plan: FaultPlan,
    ) -> Result<RunOutcome, RunError> {
        self.session_with_faults(plan).run(input)
    }

    /// Whether the optimizer's `delta_load` pass armed the Load phase
    /// for cross-frame NBin residency ([`Session::infer_delta`]). On by
    /// default; [`PreparedNetwork::reoptimize`] with
    /// [`crate::OptConfig::none`] disarms it.
    pub fn delta_load_capable(&self) -> bool {
        self.opt_report.delta_load
    }
}

/// Caller-held cross-frame NBin residency state for
/// [`Session::infer_delta`]: one content hash per input row, keyed by
/// the input geometry.
///
/// The model (DESIGN.md §3k): the double-buffered NBin's *staging* bank
/// — the one the sensor streams the next frame into while the compute
/// bank runs — still holds the previous frame's rows when the same
/// region geometry comes around again. Rows whose content is unchanged
/// need not re-stream; only dirty rows cross the sensor→NBin link. The
/// dirty set is **derived**, not asserted: `infer_delta` hashes every
/// row of the presented input (the same `mix64` finalizer the schedule
/// recorder's `AccessSet` hashes addresses with) and compares against
/// the resident hashes, so a caller cannot under-declare. The full
/// input values are still installed in the simulator's buffer — the
/// resident rows are, by definition, already those values — which is
/// why delta-load replay is bit-identical to a cold load by
/// construction; only the Load phase's modeled cycles and NBin write
/// traffic shrink.
///
/// One residency tracks one stream of same-geometry inputs (e.g. one
/// region slot of a video grid). Geometry changes reset it to cold.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NbResidency {
    /// Geometry the hashes describe: `(maps, width, height)`.
    dims: (usize, usize, usize),
    /// One content hash per `(map, row)`, map-major.
    rows: Vec<u64>,
}

impl NbResidency {
    /// Fresh (cold) residency: the first delta run streams every row.
    pub fn new() -> NbResidency {
        NbResidency::default()
    }

    /// Drops the resident state: the next delta run streams every row.
    pub fn invalidate(&mut self) {
        self.dims = (0, 0, 0);
        self.rows.clear();
    }

    /// `true` once a run has populated the resident hashes.
    pub fn is_warm(&self) -> bool {
        !self.rows.is_empty()
    }

    /// Rows tracked (`maps × height`; 0 when cold).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }
}

/// Hashes one input row's exact bit content with the schedule
/// recorder's `mix64` chain, four 16-bit words per mix.
fn hash_row(row: &[Fx]) -> u64 {
    let mut h = schedule::mix64(0x000D_E17A ^ row.len() as u64);
    for chunk in row.chunks(4) {
        let mut word = 0u64;
        for (i, v) in chunk.iter().enumerate() {
            word |= (v.to_bits() as u16 as u64) << (16 * i);
        }
        h = schedule::mix64(h ^ word);
    }
    h
}

/// Load-phase accounting of one [`Session::infer_delta`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaLoad {
    /// Input rows the network geometry carries (`maps × height`).
    pub rows_total: usize,
    /// Rows that differed from the resident state and streamed.
    pub rows_streamed: usize,
    /// Bytes the Load phase streamed (`rows_streamed × width × 2`).
    pub bytes_streamed: u64,
    /// Bytes a cold load streams.
    pub bytes_total: u64,
}

impl DeltaLoad {
    /// `true` when residency saved at least one row's stream.
    pub fn any_saved(&self) -> bool {
        self.rows_streamed < self.rows_total
    }
}

/// Reusable execution state over a [`PreparedNetwork`]: the neuron
/// buffers, synapse buffer, instruction buffer, PE mesh, ALU, statistics
/// slots, and the executors' scratch arena stay allocated across
/// inferences. Each run resets the mesh to its power-on state first, so
/// results and statistics are bit-identical to a freshly constructed
/// accelerator's.
///
/// After the first inference has grown every buffer to the network's
/// high-water mark, a [`Session::infer_ref`] call performs **zero heap
/// allocations** (asserted by the benchmark harness's counting
/// allocator).
pub struct Session<'p> {
    prepared: &'p PreparedNetwork,
    /// One `Arc` clone of the prepared network's schedule: sessions
    /// share the decoded control state instead of re-deriving (or
    /// copying) it.
    schedule: Arc<NetworkSchedule>,
    nbin: NeuronBuffer,
    nbout: NeuronBuffer,
    sb: SynapseBuffer,
    ib: InstructionBuffer,
    nfu: Nfu,
    alu: Alu,
    faults: FaultState,
    scratch: Scratch,
    stats: RunStats,
    /// Recycling bin for the batched output stacks
    /// ([`Session::infer_batch_into`]): retired feature maps park here
    /// and are reclaimed by best capacity fit instead of reallocating.
    map_bin: Vec<FeatureMap<Fx>>,
    last_cycles: u64,
    /// Schedule replay on/off (on by default; benches flip it off to
    /// measure live decode).
    replay_enabled: bool,
    /// Whether `schedule` currently points at the prepared network's
    /// optimizer-rewritten stream (off by default — the verbatim
    /// recording is the frozen-baseline path).
    optimized: bool,
    /// Per-layer fault overlays, resolved lazily from the schedule the
    /// first faulted run after a plan change, then reused run after run.
    overlays: Vec<LayerOverlay>,
    overlays_valid: bool,
    /// Load-phase bytes staged by [`Session::infer_delta`] for the next
    /// run; `None` means cold (full) load. Consumed at the top of
    /// `execute_inner`, so it can never leak across runs.
    pending_delta_bytes: Option<u64>,
    /// Attached only by `prepare()`'s recording run.
    recorder: Option<Box<ScheduleRecorder>>,
}

impl<'p> Session<'p> {
    /// The prepared network this session executes.
    pub fn prepared(&self) -> &'p PreparedNetwork {
        self.prepared
    }

    /// Replaces the session's fault plan (and re-derives the PE mesh's
    /// stuck-at faults) without reallocating buffers — how the degraded
    /// streaming pipeline retries a region under a salted plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.nfu.set_stuck_faults(|x, y| plan.pe_stuck(x, y));
        self.faults = FaultState::new(plan);
        // Fault overlays are resolved against a specific plan; the next
        // faulted run rebuilds them.
        self.overlays_valid = false;
    }

    /// Enables or disables schedule replay (on by default). With replay
    /// off every layer live-decodes — outputs, statistics, energy,
    /// traces, and fault counters are bit-identical either way; only
    /// simulation throughput differs.
    pub fn set_schedule_replay(&mut self, enabled: bool) {
        self.replay_enabled = enabled;
    }

    /// Whether schedule replay is enabled.
    pub fn schedule_replay(&self) -> bool {
        self.replay_enabled
    }

    /// Switches the session between the verbatim recording (default)
    /// and the optimizer-rewritten schedule ([`crate::opt`]). Outputs
    /// are bit-identical either way; the optimized stream replays
    /// faster, models strictly fewer cycles, and charges less energy.
    /// Fault overlays are resolved against a specific schedule, so
    /// switching invalidates them (the next faulted run rebuilds).
    pub fn set_optimized_replay(&mut self, enabled: bool) {
        if self.optimized == enabled {
            return;
        }
        self.optimized = enabled;
        self.schedule = if enabled {
            Arc::clone(&self.prepared.opt_schedule)
        } else {
            Arc::clone(&self.prepared.schedule)
        };
        self.overlays_valid = false;
    }

    /// Whether the session replays the optimized schedule.
    pub fn optimized_replay(&self) -> bool {
        self.optimized
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Fault counters of the most recent run (reset at each run's start;
    /// valid after both successful and aborted runs).
    pub fn fault_stats(&self) -> &FaultStats {
        self.faults.stats()
    }

    /// Cycles charged by the most recent run, including runs aborted by
    /// [`RunError::FaultDetected`] — the cost a watchdog accounts for a
    /// wasted attempt.
    pub fn last_cycles(&self) -> u64 {
        self.last_cycles
    }

    /// Executes one inference, recording every layer's output stack
    /// (identical to what [`Accelerator::run`] returns).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InputShape`] when the input mismatches.
    pub fn run(&mut self, input: &MapStack<Fx>) -> Result<RunOutcome, RunError> {
        let mut layer_outputs = Vec::new();
        self.execute(input, Some(&mut layer_outputs))?;
        let stats = self.stats.clone();
        let energy = self.prepared.energy_model.charge_run(&stats);
        Ok(RunOutcome {
            layer_outputs,
            stats,
            energy,
            energy_model: self.prepared.energy_model,
            frequency_ghz: self.prepared.config.frequency_ghz,
            fault_stats: *self.faults.stats(),
        })
    }

    /// Executes one inference without keeping per-layer output traces —
    /// the owned-result streaming path. The final output, statistics,
    /// and energy are identical to [`Session::run`]'s.
    ///
    /// Taking the output stack out of the buffer costs the next run one
    /// stack allocation; throughput-critical callers that only need to
    /// *look* at the result should use [`Session::infer_ref`], which is
    /// allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InputShape`] when the input mismatches.
    pub fn infer(&mut self, input: &MapStack<Fx>) -> Result<Inference, RunError> {
        self.execute(input, None)?;
        let output = self.nbin.take().ok_or(EmptyBufferError {
            buffer: "NB (final output)",
        })?;
        let stats = self.stats.clone();
        let energy = self.prepared.energy_model.charge_run(&stats);
        Ok(Inference {
            output,
            stats,
            energy,
            frequency_ghz: self.prepared.config.frequency_ghz,
            fault_stats: *self.faults.stats(),
        })
    }

    /// Executes one inference and returns the result *borrowed* from the
    /// session: the output stack stays installed in the buffer and the
    /// statistics live in the session's recycled slots, so once the
    /// session's buffers have grown to the network's high-water mark this
    /// path performs **zero heap allocations** per inference. Output,
    /// statistics, and energy are bit-identical to [`Session::run`]'s and
    /// [`Session::infer`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InputShape`] when the input mismatches.
    pub fn infer_ref(&mut self, input: &MapStack<Fx>) -> Result<InferenceRef<'_>, RunError> {
        self.execute(input, None)?;
        let energy = self.prepared.energy_model.charge_run(&self.stats);
        let output = self.nbin.contents().ok_or(EmptyBufferError {
            buffer: "NB (final output)",
        })?;
        Ok(InferenceRef {
            output,
            stats: &self.stats,
            energy,
            frequency_ghz: self.prepared.config.frequency_ghz,
            fault_stats: self.faults.stats(),
        })
    }

    /// Executes one inference with a **delta load**: rows of `input`
    /// whose content matches the caller-held [`NbResidency`] state are
    /// served from the double-buffered NBin's resident copy, and only
    /// dirty rows stream over the sensor→NBin link — the Load phase's
    /// cycles and NBin write traffic shrink proportionally. Everything
    /// after the Load phase (outputs, per-layer statistics, fault
    /// behaviour) is **bit-identical** to [`Session::infer`] by
    /// construction (see [`NbResidency`] for why), and `residency` is
    /// updated to describe `input` either way.
    ///
    /// Requires the prepared network's optimizer to have the
    /// `delta_load` pass armed ([`crate::OptConfig`], on by default);
    /// with the pass off, the run cold-loads and the report shows every
    /// row streamed.
    ///
    /// # Errors
    ///
    /// Exactly [`Session::infer`]'s.
    pub fn infer_delta(
        &mut self,
        input: &MapStack<Fx>,
        residency: &mut NbResidency,
    ) -> Result<(Inference, DeltaLoad), RunError> {
        let delta = self.stage_delta(input, residency);
        let inference = self.infer(input)?;
        Ok((inference, delta))
    }

    /// The borrowed-result form of [`Session::infer_delta`]: zero heap
    /// allocations in steady state, like [`Session::infer_ref`].
    ///
    /// # Errors
    ///
    /// Exactly [`Session::infer`]'s.
    pub fn infer_delta_ref(
        &mut self,
        input: &MapStack<Fx>,
        residency: &mut NbResidency,
    ) -> Result<(InferenceRef<'_>, DeltaLoad), RunError> {
        let delta = self.stage_delta(input, residency);
        let inference = self.infer_ref(input)?;
        Ok((inference, delta))
    }

    /// Hashes `input`'s rows against `residency`, updates the resident
    /// state, and (when the `delta_load` pass is armed) stages the
    /// dirty-byte count for the next run's Load phase.
    fn stage_delta(&mut self, input: &MapStack<Fx>, residency: &mut NbResidency) -> DeltaLoad {
        let maps = input.len();
        let (w, h) = (input.width(), input.height());
        let rows_total = maps * h;
        let bytes_total = (input.neuron_count() * 2) as u64;
        let dims = (maps, w, h);
        let warm = residency.dims == dims && residency.rows.len() == rows_total;
        if !warm {
            residency.dims = dims;
            residency.rows.clear();
            residency.rows.resize(rows_total, 0);
        }
        let mut streamed = 0usize;
        for (m, map) in input.iter().enumerate() {
            for y in 0..h {
                let hash = hash_row(map.row(y));
                let slot = &mut residency.rows[m * h + y];
                if !warm || *slot != hash {
                    streamed += 1;
                    *slot = hash;
                }
            }
        }
        let delta = DeltaLoad {
            rows_total,
            rows_streamed: streamed,
            bytes_streamed: streamed as u64 * (w * 2) as u64,
            bytes_total,
        };
        if self.prepared.opt_report.delta_load {
            self.pending_delta_bytes = Some(delta.bytes_streamed);
            delta
        } else {
            // Pass disarmed: the run cold-loads; report it honestly.
            DeltaLoad {
                rows_streamed: rows_total,
                bytes_streamed: bytes_total,
                ..delta
            }
        }
    }

    /// Executes a batch of inferences through **one** schedule replay:
    /// lane 0 runs the full instrumented path (charging control,
    /// statistics, energy, and fault counters once — they are
    /// input-independent, so every lane's would be identical), and lanes
    /// `1..N` run only the value-producing arithmetic over the same
    /// precompiled control stream. Each lane's output, statistics,
    /// energy, and fault counters are bit-identical to what a sequential
    /// [`Session::infer`] of that input would return.
    ///
    /// This is the allocating convenience wrapper;
    /// [`Session::infer_batch_into`] is the zero-allocation form.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::EmptyBuffer`] for an empty batch,
    /// [`RunError::InputShape`] when any input mismatches, and
    /// [`RunError::FaultDetected`] when SRAM protection aborts — the
    /// abort is input-independent, so it would fire identically for
    /// every lane.
    pub fn infer_batch(&mut self, inputs: &[MapStack<Fx>]) -> Result<Vec<Inference>, RunError> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let batch = self.infer_batch_into(inputs, &mut outputs)?;
        let stats = batch.stats.clone();
        let energy = batch.energy;
        let frequency_ghz = batch.frequency_ghz;
        let fault_stats = *batch.fault_stats;
        Ok(outputs
            .into_iter()
            .map(|output| Inference {
                output,
                stats: stats.clone(),
                energy,
                frequency_ghz,
                fault_stats,
            })
            .collect())
    }

    /// The zero-allocation batch path: per-lane outputs land in
    /// `outputs` (resized to the batch length), recycling their existing
    /// map storage through the session's bin, and the shared run
    /// statistics are returned borrowed. Once the session and `outputs`
    /// have warmed to the network's high-water mark, a steady-state call
    /// performs **zero heap allocations** (asserted by the benchmark
    /// harness's counting allocator).
    ///
    /// Outputs are bit-identical to sequential [`Session::infer`] calls;
    /// see [`Session::infer_batch`] for the statistics contract.
    ///
    /// # Errors
    ///
    /// Exactly [`Session::infer_batch`]'s.
    pub fn infer_batch_into(
        &mut self,
        inputs: &[MapStack<Fx>],
        outputs: &mut Vec<MapStack<Fx>>,
    ) -> Result<BatchRef<'_>, RunError> {
        if inputs.is_empty() {
            return Err(EmptyBufferError {
                buffer: "batch inputs",
            }
            .into());
        }
        // One (possibly empty) reusable stack per lane: surplus stacks
        // drop, missing ones start empty and fill from the bin.
        outputs.truncate(inputs.len());
        while outputs.len() < inputs.len() {
            outputs.push(MapStack::new(1, 1));
        }

        let mut fault_snapshot = FaultStats::default();
        for (lane, input) in inputs.iter().enumerate() {
            if lane == 0 {
                // The canonical lane: full instrumented (or analytic /
                // replay) execution, exactly as `infer` would run it.
                self.execute(input, None)?;
                fault_snapshot = *self.faults.stats();
            } else {
                self.execute_values(input)?;
            }
            let installed = self.nbin.contents().ok_or(EmptyBufferError {
                buffer: "NB (final output)",
            })?;
            outputs[lane].clone_from_recycling(installed, &mut self.map_bin);
        }
        // Value lanes filtered their own data faults (bit-identical flips
        // at the plan's input-independent addresses) but must not charge
        // the counters again: restore the canonical lane's snapshot.
        self.faults.reset_stats();
        self.faults.absorb_stats(&fault_snapshot);

        let energy = self.prepared.energy_model.charge_run(&self.stats);
        Ok(BatchRef {
            stats: &self.stats,
            energy,
            frequency_ghz: self.prepared.config.frequency_ghz,
            fault_stats: self.faults.stats(),
            len: inputs.len(),
        })
    }

    /// The cycle-by-cycle inference loop shared by `run`, `infer`, and
    /// `infer_ref` (`trace` is `Some` only for `run`). Statistics land in
    /// the session's recycled [`RunStats`] slots; the final layer's
    /// output is left installed in the buffer currently holding the NBin
    /// role. Cycles charged up to an abort (including a
    /// [`RunError::FaultDetected`] one) are recorded in
    /// [`Session::last_cycles`] either way.
    fn execute(
        &mut self,
        input: &MapStack<Fx>,
        trace: Option<&mut Vec<MapStack<Fx>>>,
    ) -> Result<(), RunError> {
        self.faults.reset_stats();
        self.stats.restart();
        let result = self.execute_inner(input, trace);
        self.last_cycles = self.stats.cycles();
        result
    }

    fn execute_inner(
        &mut self,
        input: &MapStack<Fx>,
        mut trace: Option<&mut Vec<MapStack<Fx>>>,
    ) -> Result<(), RunError> {
        // Consume any staged delta-load immediately so an aborted or
        // shape-rejected run cannot leak it into the next one.
        let staged_delta_bytes = self.pending_delta_bytes.take();
        let network = &self.prepared.network;
        let expected = (
            network.input_maps(),
            network.input_dims().0,
            network.input_dims().1,
        );
        let got = (input.len(), input.width(), input.height());
        if expected != got {
            return Err(RunError::InputShape { expected, got });
        }

        let cfg = &self.prepared.config;
        let store = &self.prepared.store;
        self.nfu.reset();
        let mut hfsm = Hfsm::new();
        // Fast-kernel selection (§perf in DESIGN.md): the bulk-SoA sweep
        // kernel runs only when nothing needs per-word / per-PE
        // instrumentation — no fault plan filtering SRAM reads, no
        // stuck-at faults installed in the mesh, no layer trace being
        // recorded, and no schedule recorder attached. It is
        // bit-identical to the instrumented path in outputs, statistics,
        // and energy.
        let fast = trace.is_none()
            && !self.faults.active()
            && !self.nfu.any_stuck()
            && self.recorder.is_none();
        // Schedule-replay selection (§3f in DESIGN.md): replay covers
        // traced and silently-faulted runs too — that is its point — but
        // stuck-at PEs corrupt values inside the propagation network in
        // ways the precompiled stream does not model, and the recording
        // run itself must live-decode.
        let schedule = Arc::clone(&self.schedule);
        let use_replay = self.replay_enabled
            && self.recorder.is_none()
            && !self.nfu.any_stuck()
            && schedule.layer_count() == network.layers().len();
        if use_replay && self.faults.active() && !self.overlays_valid {
            // Resolve the plan against the schedule once; every
            // subsequent run under this plan reuses the overlays.
            self.overlays.clear();
            let plan = *self.faults.plan();
            self.overlays.extend(
                schedule
                    .layers()
                    .iter()
                    .enumerate()
                    .map(|(i, ls)| schedule::build_overlay(&plan, i, ls)),
            );
            self.overlays_valid = true;
        }

        // Load phase: the sensor/host streams the image into NBin at one
        // bank-width write per cycle. A staged delta-load
        // ([`Session::infer_delta`]) streams only the dirty rows; the
        // resident rows are already in the staging bank, so the full
        // values are installed either way and everything downstream is
        // bit-identical to a cold load.
        let load = self.stats.begin_layer("Load");
        hfsm.enter(FirstState::Load).expect("HFSM: load");
        self.ib.fetch(load);
        self.faults.filter_word(FaultSite::Ib, 0, [0, 0, 0])?;
        let input_bytes = input.neuron_count() * 2;
        let streamed_bytes = staged_delta_bytes.unwrap_or(input_bytes as u64);
        load.cycles = streamed_bytes.div_ceil(cfg.nb_bank_width_bytes() as u64);
        if streamed_bytes > 0 {
            load.nbin.write(streamed_bytes);
        }
        self.nbin.load_from(input)?;

        if let Some(outputs) = trace.as_deref_mut() {
            outputs.reserve(network.layers().len());
        }
        for (i, layer) in network.layers().iter().enumerate() {
            let (ow, oh) = layer.out_dims();
            self.nbout.begin_output(ow, oh, layer.out_maps())?;
            let layer_stats = self.stats.begin_layer(&self.prepared.layer_labels[i]);
            for f in 0..self.prepared.layer_instruction_counts[i] {
                self.ib.fetch(layer_stats);
                // Fetches are addressed per layer epoch (the load fetch is
                // epoch 0).
                self.faults
                    .filter_word(FaultSite::Ib, i + 1, [f as u64, 0, 0])?;
            }
            // Replay decision for this layer: the schedule must model it,
            // and its fault overlay must not contain a detected error —
            // detected errors abort mid-layer with exact partial
            // statistics only live decode reproduces.
            let sched_layer = if use_replay {
                Some(&schedule.layers()[i])
            } else {
                None
            };
            let overlay = if sched_layer.is_some() && self.faults.active() {
                Some(&self.overlays[i])
            } else {
                None
            };
            let replay_this = sched_layer.is_some_and(|l| l.replayable())
                && !matches!(overlay, Some(LayerOverlay::Abort));
            let mut sb_patches: &[([u64; 3], u16)] = &[];
            if replay_this {
                if let Some(LayerOverlay::Silent(s)) = overlay {
                    // Pre-resolve the layer's silent faults: NB flips go
                    // into the input stack in place, SB flips patch at
                    // fetch, and the counter delta lands in one absorb.
                    if !s.nb_patches.is_empty() {
                        let sl = sched_layer.expect("replay_this implies a schedule");
                        let stack = self.nbin.contents_mut().ok_or(EmptyBufferError {
                            buffer: "NB (input role)",
                        })?;
                        schedule::apply_nb_patches(stack, sl.nb_flat, &s.nb_patches);
                    }
                    self.faults.absorb_stats(&s.delta);
                    sb_patches = &s.sb_patches;
                }
            }
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.begin_layer(
                    schedule::layer_replayable(cfg, layer),
                    matches!(layer.body(), LayerBody::Fc { .. }),
                );
            }
            let attach_recorder = self.recorder.is_some() && schedule::layer_replayable(cfg, layer);
            let mut engine = Engine {
                cfg,
                nbin: &self.nbin,
                nbout: &mut self.nbout,
                sb: &self.sb,
                store,
                layer_index: i,
                nfu: &mut self.nfu,
                alu: &self.alu,
                hfsm: &mut hfsm,
                stats: &mut *layer_stats,
                faults: &mut self.faults,
                scratch: &mut self.scratch,
                fast,
                recorder: if attach_recorder {
                    self.recorder.as_deref_mut()
                } else {
                    None
                },
            };
            // On an abort the slot keeps the layer's cycles so watchdog
            // budgets can charge the wasted attempt.
            match sched_layer {
                Some(sl) if replay_this => replay::run_layer(&mut engine, layer, sl, sb_patches)?,
                _ => engine.run_layer(layer)?,
            }
            if let Some(rec) = self.recorder.as_deref_mut() {
                // Snapshot the layer's stats delta *before* bank-conflict
                // folding (applied below identically on either path) and
                // the mesh's cumulative FIFO peaks.
                rec.finish_layer(layer_stats, self.nfu.fifo_peaks());
            }
            if cfg.model_bank_conflicts {
                // Conflicting banked requests serialize: the stall cycles
                // extend the layer with the whole mesh idle.
                layer_stats.cycles += layer_stats.bank_conflict_cycles;
                layer_stats.pe_total_slots +=
                    layer_stats.bank_conflict_cycles * cfg.pe_count() as u64;
            }
            // §5's role swap: the finished output becomes the next
            // layer's input in place, with no copy.
            self.nbout.finish_output_into_input()?;
            core::mem::swap(&mut self.nbin, &mut self.nbout);
            if let Some(outputs) = trace.as_deref_mut() {
                let installed = self.nbin.contents().ok_or(EmptyBufferError {
                    buffer: "NB (installed output)",
                })?;
                outputs.push(installed.clone());
            }
        }
        hfsm.enter(FirstState::End).expect("HFSM: end");

        Ok(())
    }

    /// The value-only lane executor for lanes `1..N` of a batch:
    /// identical data movement and arithmetic to [`Session::execute`] —
    /// same input load, same per-layer kernels in the same
    /// per-accumulator operation order, same role swaps — with the
    /// control re-derivation and statistics skipped. Every control
    /// decision (path selection, HFSM sequence, addresses, cycle counts)
    /// is input-independent, so the canonical lane already charged
    /// exactly what this lane would have; per-layer metering goes to a
    /// local discard and [`Session::last_cycles`] / the run statistics
    /// keep the canonical lane's values. Fault *data* effects (flips at
    /// the plan's input-independent addresses) are applied to this
    /// lane's own data; the counter double-charge is undone by the
    /// caller's snapshot restore.
    fn execute_values(&mut self, input: &MapStack<Fx>) -> Result<(), RunError> {
        let network = &self.prepared.network;
        let expected = (
            network.input_maps(),
            network.input_dims().0,
            network.input_dims().1,
        );
        let got = (input.len(), input.width(), input.height());
        if expected != got {
            return Err(RunError::InputShape { expected, got });
        }

        let cfg = &self.prepared.config;
        let store = &self.prepared.store;
        self.nfu.reset();
        let mut hfsm = Hfsm::new();
        // Mirror `execute_inner`'s path selection exactly (the canonical
        // lane resolved any fault overlays already).
        let fast = !self.faults.active() && !self.nfu.any_stuck() && self.recorder.is_none();
        let schedule = Arc::clone(&self.schedule);
        let use_replay = self.replay_enabled
            && self.recorder.is_none()
            && !self.nfu.any_stuck()
            && schedule.layer_count() == network.layers().len();
        debug_assert!(
            !(use_replay && self.faults.active()) || self.overlays_valid,
            "the canonical lane resolves overlays before value lanes run"
        );

        hfsm.enter(FirstState::Load).expect("HFSM: load");
        self.nbin.load_from(input)?;

        for (i, layer) in network.layers().iter().enumerate() {
            let (ow, oh) = layer.out_dims();
            self.nbout.begin_output(ow, oh, layer.out_maps())?;
            let sched_layer = if use_replay {
                Some(&schedule.layers()[i])
            } else {
                None
            };
            let overlay = if sched_layer.is_some() && self.faults.active() {
                Some(&self.overlays[i])
            } else {
                None
            };
            let replay_this = sched_layer.is_some_and(|l| l.replayable())
                && !matches!(overlay, Some(LayerOverlay::Abort));
            let mut sb_patches: &[([u64; 3], u16)] = &[];
            if replay_this {
                if let Some(LayerOverlay::Silent(s)) = overlay {
                    if !s.nb_patches.is_empty() {
                        let sl = sched_layer.expect("replay_this implies a schedule");
                        let stack = self.nbin.contents_mut().ok_or(EmptyBufferError {
                            buffer: "NB (input role)",
                        })?;
                        schedule::apply_nb_patches(stack, sl.nb_flat, &s.nb_patches);
                    }
                    sb_patches = &s.sb_patches;
                }
            }
            // Metering discard: live-decoded layers (non-replayable ones,
            // or all of them with replay off) still charge *something*;
            // it is identical to what the canonical lane charged, so it
            // goes nowhere.
            let mut discard = LayerStats::default();
            let mut engine = Engine {
                cfg,
                nbin: &self.nbin,
                nbout: &mut self.nbout,
                sb: &self.sb,
                store,
                layer_index: i,
                nfu: &mut self.nfu,
                alu: &self.alu,
                hfsm: &mut hfsm,
                stats: &mut discard,
                faults: &mut self.faults,
                scratch: &mut self.scratch,
                fast,
                recorder: None,
            };
            match sched_layer {
                Some(sl) if replay_this => {
                    replay::layer_values(&mut engine, layer, sb_patches, sl.row_lanes())
                }
                _ => engine.run_layer(layer)?,
            }
            self.nbout.finish_output_into_input()?;
            core::mem::swap(&mut self.nbin, &mut self.nbout);
        }
        hfsm.enter(FirstState::End).expect("HFSM: end");

        Ok(())
    }
}

// Thread-migration invariant: the serve layer pools warm `Session`s and
// hands them to scheduler worker threads, so both ends of the
// prepare→execute split must stay thread-safe:
//
// * `PreparedNetwork` must be `Send + Sync` — one prepared network is
//   shared by reference across every worker executing its tenant;
// * `Session<'_>` must be `Send` — a pooled session (which holds a
//   `&PreparedNetwork` plus its own buffers and PE mesh) migrates to
//   whichever worker thread the scheduler dispatches it to.
//
// Everything inside is owned data (`Vec`-backed buffers, SoA PE state,
// copyable plans); nothing holds `Rc`, interior mutability, or raw
// pointers. These compile-time assertions keep it that way: adding a
// non-thread-safe field to either type breaks the build here rather than
// deep inside the serve crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<PreparedNetwork>();
    assert_sync::<PreparedNetwork>();
    assert_send::<Session<'static>>();
};

/// A trace-free inference result from [`Session::infer`]: the final
/// output plus the run's statistics and energy.
#[derive(Clone, Debug)]
pub struct Inference {
    output: MapStack<Fx>,
    stats: RunStats,
    energy: EnergyReport,
    frequency_ghz: f64,
    fault_stats: FaultStats,
}

impl Inference {
    /// The final layer's output stack.
    pub fn output(&self) -> &MapStack<Fx> {
        &self.output
    }

    /// The final layer's output, flattened map-major (comparable to
    /// [`RunOutcome::output`]).
    pub fn output_flat(&self) -> Vec<Fx> {
        self.output.flatten()
    }

    /// Consumes the result, returning the output stack.
    pub fn into_output(self) -> MapStack<Fx> {
        self.output
    }

    /// Execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Energy charged by the prepared network's model.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Wall-clock seconds for this inference.
    pub fn seconds(&self) -> f64 {
        self.stats.seconds_at(self.frequency_ghz)
    }

    /// What the fault layer did during this inference (all zeros under a
    /// fault-free plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }
}

/// A borrowed inference result from [`Session::infer_ref`]: the output
/// stack and statistics are views into the session's reusable storage
/// (valid until the next run), so producing one allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct InferenceRef<'s> {
    output: &'s MapStack<Fx>,
    stats: &'s RunStats,
    energy: EnergyReport,
    frequency_ghz: f64,
    fault_stats: &'s FaultStats,
}

impl InferenceRef<'_> {
    /// The final layer's output stack.
    pub fn output(&self) -> &MapStack<Fx> {
        self.output
    }

    /// The final layer's output, flattened map-major (comparable to
    /// [`RunOutcome::output`]).
    pub fn output_flat(&self) -> Vec<Fx> {
        self.output.flatten()
    }

    /// Execution statistics.
    pub fn stats(&self) -> &RunStats {
        self.stats
    }

    /// Energy charged by the prepared network's model.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Wall-clock seconds for this inference.
    pub fn seconds(&self) -> f64 {
        self.stats.seconds_at(self.frequency_ghz)
    }

    /// What the fault layer did during this inference (all zeros under a
    /// fault-free plan).
    pub fn fault_stats(&self) -> &FaultStats {
        self.fault_stats
    }
}

/// The shared (input-independent) results of one batched inference from
/// [`Session::infer_batch_into`]: statistics, energy, and fault counters
/// are charged once for the whole batch and are bit-identical to any
/// single lane's sequential [`Session::infer`]. Per-lane outputs land in
/// the caller's recycled `outputs` vector.
#[derive(Clone, Copy, Debug)]
pub struct BatchRef<'s> {
    stats: &'s RunStats,
    energy: EnergyReport,
    frequency_ghz: f64,
    fault_stats: &'s FaultStats,
    len: usize,
}

impl BatchRef<'_> {
    /// Execution statistics (one inference's worth — identical for every
    /// lane).
    pub fn stats(&self) -> &RunStats {
        self.stats
    }

    /// Energy charged by the prepared network's model (per inference).
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Wall-clock seconds per inference.
    pub fn seconds(&self) -> f64 {
        self.stats.seconds_at(self.frequency_ghz)
    }

    /// What the fault layer did during each lane (all zeros under a
    /// fault-free plan).
    pub fn fault_stats(&self) -> &FaultStats {
        self.fault_stats
    }

    /// The batch size (never zero).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false — empty batches are rejected with an error.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The result of one accelerator execution.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    layer_outputs: Vec<MapStack<Fx>>,
    stats: RunStats,
    energy: EnergyReport,
    energy_model: EnergyModel,
    frequency_ghz: f64,
    fault_stats: FaultStats,
}

impl RunOutcome {
    /// The final layer's output, flattened map-major (comparable to
    /// [`shidiannao_cnn::ForwardTrace::output`]).
    ///
    /// # Panics
    ///
    /// Panics if the network had no layers (impossible for built
    /// networks).
    pub fn output(&self) -> Vec<Fx> {
        self.layer_outputs
            .last()
            .expect("networks have at least one layer")
            .flatten()
    }

    /// Every layer's output stack, in execution order.
    pub fn layer_outputs(&self) -> &[MapStack<Fx>] {
        &self.layer_outputs
    }

    /// Execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Energy charged by the accelerator's model.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Per-layer energy breakdown (same order as
    /// [`RunStats::layers`](crate::RunStats::layers), Load phase first),
    /// charged with the same model as [`RunOutcome::energy`] — the one
    /// the accelerator was configured with.
    pub fn layer_energies(&self) -> Vec<EnergyReport> {
        self.stats
            .layers()
            .iter()
            .map(|l| self.energy_model.charge(l))
            .collect()
    }

    /// The energy model this run was charged with.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Wall-clock seconds for this inference.
    pub fn seconds(&self) -> f64 {
        self.stats.seconds_at(self.frequency_ghz)
    }

    /// Average power in milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        self.energy
            .average_power_mw(self.stats.cycles(), self.frequency_ghz)
    }

    /// What the fault layer did during this run (all zeros under a
    /// fault-free plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Sustained fixed-point GOP/s over the run: PE multiplies, adds, and
    /// comparisons plus ALU operations, divided by wall-clock time.
    /// Compare with [`AcceleratorConfig::peak_gops`] — the gap is the
    /// measured utilization loss.
    pub fn effective_gops(&self) -> f64 {
        let t = self.stats.total();
        let ops = t.pe_muls + t.pe_adds + t.pe_cmps + t.alu_acts + t.alu_divs;
        ops as f64 / self.seconds() / 1e9
    }
}
