//! The Neural Functional Unit: a 2D mesh of PEs (Fig. 5).

use crate::pe::{PeArray, PeMut, PeRef};
use crate::stats::LayerStats;
use shidiannao_fixed::{Accum, Fx};

/// The `Px × Py` PE mesh with its inter-PE propagation topology.
///
/// PEs are addressed by `(x, y)` with `x` the column and `y` the row. Data
/// propagates right-to-left (a PE pops its **right** neighbour's FIFO-H)
/// and bottom-to-top (a PE pops the FIFO-V of the PE **below** it),
/// matching §5.1's "each PE can send locally-stored input neurons to its
/// left and lower neighbors" as seen from the receiving side of Fig. 13's
/// walkthrough.
///
/// PE state is stored structure-of-arrays in a [`PeArray`] (one flat
/// array per register class, indexed `y·Px + x`); [`Nfu::pe`] /
/// [`Nfu::pe_mut`] hand out per-PE views. The `receive_*` /
/// `propagate_*_block` bulk operations cover a whole active block in one
/// call — the fast sweep kernel's inner loop.
#[derive(Clone, Debug)]
pub struct Nfu {
    px: usize,
    py: usize,
    pes: PeArray,
}

impl Nfu {
    /// Creates a mesh of idle PEs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(px: usize, py: usize) -> Nfu {
        assert!(px > 0 && py > 0, "NFU mesh must be non-empty");
        Nfu {
            px,
            py,
            pes: PeArray::new(px * py),
        }
    }

    /// Mesh columns (`Px`).
    #[inline]
    pub fn px(&self) -> usize {
        self.px
    }

    /// Mesh rows (`Py`).
    #[inline]
    pub fn py(&self) -> usize {
        self.py
    }

    /// Total PE count.
    #[inline]
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// Always false (the mesh is non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The PE at `(x, y)`.
    ///
    /// Bounds are `debug_assert!`-checked only: mesh coordinates come
    /// from the compiled block schedule, which never exceeds `(Px, Py)`
    /// by construction (checked in `Program::compile`), so release
    /// builds skip the per-access range check.
    #[inline]
    pub fn pe(&self, x: usize, y: usize) -> PeRef<'_> {
        debug_assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        PeRef {
            arr: &self.pes,
            i: y * self.px + x,
        }
    }

    /// Mutable view of the PE at `(x, y)` (bounds `debug_assert!`-checked,
    /// see [`Nfu::pe`]).
    #[inline]
    pub fn pe_mut(&mut self, x: usize, y: usize) -> PeMut<'_> {
        debug_assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        PeMut {
            arr: &mut self.pes,
            i: y * self.px + x,
        }
    }

    /// Pops the FIFO-H of the PE to the right of `(x, y)` — the horizontal
    /// inter-PE propagation of Fig. 13 cycles #1–#2.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is the rightmost column (it has no right
    /// neighbour and must read from NBin instead).
    pub fn propagate_from_right(&mut self, x: usize, y: usize) -> Fx {
        assert!(x + 1 < self.px, "PE ({x},{y}) has no right neighbour");
        self.pes.pop_h(y * self.px + x + 1)
    }

    /// Pops the FIFO-V of the PE below `(x, y)` — the vertical inter-PE
    /// propagation of Fig. 13 cycle #3.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is the bottom row.
    pub fn propagate_from_below(&mut self, x: usize, y: usize) -> Fx {
        assert!(y + 1 < self.py, "PE ({x},{y}) has no lower neighbour");
        self.pes.pop_v((y + 1) * self.px + x)
    }

    /// Restores every PE to its power-on state, so a mesh reused across
    /// inferences is indistinguishable from a freshly constructed one —
    /// including the FIFO peak-occupancy counters the §5.1 sizing tests
    /// read. Stuck-at faults survive (they model silicon, not state).
    pub fn reset(&mut self) {
        self.pes.reset();
    }

    /// Configures every PE's FIFO depths for a window pass (§5.1 sizing:
    /// `Sx` and `Sy`).
    pub fn set_fifo_depths(&mut self, h_depth: usize, v_depth: usize) {
        self.pes.set_fifo_depths(h_depth, v_depth);
    }

    /// Clears every PE's FIFO-H (kernel-row boundary).
    pub fn clear_fifos_h(&mut self) {
        self.pes.clear_all_h();
    }

    /// Clears every PE's FIFO-V (window-pass boundary).
    pub fn clear_fifos_v(&mut self) {
        self.pes.clear_all_v();
    }

    /// Installs per-PE stuck-at faults from a map of `(x, y)` to fault
    /// descriptor. Passing a closure that always returns `None` clears any
    /// previously installed faults. Stuck faults survive [`Nfu::reset`].
    pub fn set_stuck_faults(
        &mut self,
        f: impl Fn(usize, usize) -> Option<shidiannao_faults::PeStuck>,
    ) {
        for y in 0..self.py {
            for x in 0..self.px {
                self.pes.set_stuck(y * self.px + x, f(x, y));
            }
        }
    }

    /// `true` when any PE carries a stuck-at fault — one of the
    /// conditions that disables the fast sweep kernel.
    #[inline]
    pub fn any_stuck(&self) -> bool {
        self.pes.any_stuck()
    }

    /// Folds all PEs' peak FIFO occupancies into the layer statistics.
    pub fn record_fifo_peaks(&self, stats: &mut LayerStats) {
        let (h, v) = self.pes.max_fifo_peaks();
        stats.fifo_h_peak = stats.fifo_h_peak.max(h);
        stats.fifo_v_peak = stats.fifo_v_peak.max(v);
    }

    /// The mesh's cumulative `(FIFO-H, FIFO-V)` peak occupancies —
    /// monotone across a run (only `reset` clears them), which is what
    /// lets the schedule recorder snapshot them per layer.
    #[inline]
    pub(crate) fn fifo_peaks(&self) -> (usize, usize) {
        self.pes.max_fifo_peaks()
    }

    // ----- bulk mesh operations (fast sweep kernel) -------------------

    /// One MAC sweep cycle over the `aw × ah` active block anchored at
    /// the mesh origin: each PE pushes its received neuron into FIFO-H
    /// (and FIFO-V when `push_v`) and MACs it with the broadcast synapse.
    /// Exactly equivalent to the per-PE view calls of the instrumented
    /// path, fused into contiguous-array loops.
    #[inline]
    pub(crate) fn receive_mac(&mut self, active: (usize, usize), vals: &[Fx], k: Fx, push_v: bool) {
        self.pes.receive_mac(self.px, active, vals, k, push_v);
    }

    /// [`Nfu::receive_mac`]'s max-pooling counterpart.
    #[inline]
    pub(crate) fn receive_max(&mut self, active: (usize, usize), vals: &[Fx], push_v: bool) {
        self.pes.receive_max(self.px, active, vals, push_v);
    }

    /// [`Nfu::receive_mac`]'s accumulate-only counterpart.
    #[inline]
    pub(crate) fn receive_add(&mut self, active: (usize, usize), vals: &[Fx], push_v: bool) {
        self.pes.receive_add(self.px, active, vals, push_v);
    }

    /// FIFO-less MAC over the active block (the Fig. 7 no-propagation
    /// ablation).
    #[inline]
    pub(crate) fn apply_mac(&mut self, active: (usize, usize), vals: &[Fx], k: Fx) {
        self.pes.apply_mac(self.px, active, vals, k);
    }

    /// [`Nfu::apply_mac`]'s max-pooling counterpart.
    #[inline]
    pub(crate) fn apply_max(&mut self, active: (usize, usize), vals: &[Fx]) {
        self.pes.apply_max(self.px, active, vals);
    }

    /// [`Nfu::apply_mac`]'s accumulate-only counterpart.
    #[inline]
    pub(crate) fn apply_add(&mut self, active: (usize, usize), vals: &[Fx]) {
        self.pes.apply_add(self.px, active, vals);
    }

    /// Bulk horizontal propagation: fills columns `0..aw−1` of `vals`
    /// from each PE's right neighbour's FIFO-H (the rightmost column is
    /// read from NBin by the caller).
    #[inline]
    pub(crate) fn propagate_h_block(&mut self, active: (usize, usize), vals: &mut [Fx]) {
        self.pes.propagate_h_block(self.px, active, vals);
    }

    /// Bulk vertical propagation: fills rows `0..ah−1` of `vals` from
    /// each PE's lower neighbour's FIFO-V (the bottom row is read from
    /// NBin by the caller).
    #[inline]
    pub(crate) fn propagate_v_block(&mut self, active: (usize, usize), vals: &mut [Fx]) {
        self.pes.propagate_v_block(self.px, active, vals);
    }

    /// Drains the active block's accumulators into `out` (cleared first),
    /// row-major, through the PE output path.
    #[inline]
    pub(crate) fn read_accumulators_into(&self, active: (usize, usize), out: &mut Vec<Fx>) {
        self.pes.read_accumulators_into(self.px, active, out);
    }

    // ----- analytic fast-path access ----------------------------------

    /// Direct accumulator access for the analytic window reduction
    /// (bounds `debug_assert!`-checked, see [`Nfu::pe`]).
    #[inline]
    pub(crate) fn acc_mut(&mut self, x: usize, y: usize) -> &mut Accum {
        debug_assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        self.pes.acc_mut(y * self.px + x)
    }

    /// Direct comparator access for the analytic window reduction.
    #[inline]
    pub(crate) fn cmp_mut(&mut self, x: usize, y: usize) -> &mut Fx {
        debug_assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        self.pes.cmp_mut(y * self.px + x)
    }

    /// A contiguous accumulator row — PEs `(0..len, y)` — for the
    /// vectorized window reduction (see `PeArray::acc_row_mut`).
    #[inline]
    pub(crate) fn acc_row_mut(&mut self, y: usize, len: usize) -> &mut [Accum] {
        debug_assert!(
            y < self.py && len <= self.px,
            "PE row ({y},+{len}) out of range"
        );
        self.pes.acc_row_mut(self.px, y, len)
    }

    /// A contiguous comparator row (see [`Nfu::acc_row_mut`]).
    #[inline]
    pub(crate) fn cmp_row_mut(&mut self, y: usize, len: usize) -> &mut [Fx] {
        debug_assert!(
            y < self.py && len <= self.px,
            "PE row ({y},+{len}) out of range"
        );
        self.pes.cmp_row_mut(self.px, y, len)
    }

    /// Folds an analytically derived pass peak into the FIFO peak
    /// tracking (see `PeArray::note_fifo_peaks`).
    #[inline]
    pub(crate) fn note_fifo_peaks(&mut self, h: u32, v: u32) {
        self.pes.note_fifo_peaks(h, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_fixed::Fx;

    #[test]
    fn mesh_geometry() {
        let nfu = Nfu::new(8, 8);
        assert_eq!(nfu.len(), 64);
        assert_eq!((nfu.px(), nfu.py()), (8, 8));
        assert!(!nfu.is_empty());
    }

    #[test]
    fn horizontal_propagation_moves_right_to_left() {
        let mut nfu = Nfu::new(2, 1);
        nfu.pe_mut(1, 0).push_h(Fx::from_int(7));
        assert_eq!(nfu.propagate_from_right(0, 0), Fx::from_int(7));
    }

    #[test]
    fn vertical_propagation_moves_bottom_to_top() {
        let mut nfu = Nfu::new(1, 2);
        nfu.pe_mut(0, 1).push_v(Fx::from_int(9));
        assert_eq!(nfu.propagate_from_below(0, 0), Fx::from_int(9));
    }

    #[test]
    #[should_panic(expected = "no right neighbour")]
    fn rightmost_column_cannot_propagate() {
        let mut nfu = Nfu::new(2, 2);
        let _ = nfu.propagate_from_right(1, 0);
    }

    #[test]
    #[should_panic(expected = "no lower neighbour")]
    fn bottom_row_cannot_propagate() {
        let mut nfu = Nfu::new(2, 2);
        let _ = nfu.propagate_from_below(0, 1);
    }

    #[test]
    fn clears_affect_all_pes() {
        let mut nfu = Nfu::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                nfu.pe_mut(x, y).push_h(Fx::ZERO);
                nfu.pe_mut(x, y).push_v(Fx::ZERO);
            }
        }
        nfu.clear_fifos_h();
        assert_eq!(nfu.pe(1, 1).fifo_len(), (0, 1));
        nfu.clear_fifos_v();
        assert_eq!(nfu.pe(1, 1).fifo_len(), (0, 0));
    }

    #[test]
    fn peaks_fold_into_stats() {
        let mut nfu = Nfu::new(2, 1);
        nfu.set_fifo_depths(2, 2);
        nfu.pe_mut(0, 0).push_h(Fx::ZERO);
        nfu.pe_mut(0, 0).push_h(Fx::ZERO);
        nfu.pe_mut(1, 0).push_v(Fx::ZERO);
        let mut stats = LayerStats::new("t");
        nfu.record_fifo_peaks(&mut stats);
        assert_eq!(stats.fifo_h_peak, 2);
        assert_eq!(stats.fifo_v_peak, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn pe_access_is_bounds_checked() {
        let nfu = Nfu::new(2, 2);
        let _ = nfu.pe(2, 0);
    }

    #[test]
    fn stuck_faults_install_per_pe_and_survive_reset() {
        use shidiannao_faults::{PeStuck, PeStuckTarget};
        let mut nfu = Nfu::new(2, 2);
        let fault = PeStuck {
            mask: 1,
            value: 1,
            target: PeStuckTarget::Output,
        };
        nfu.set_stuck_faults(|x, y| (x == 1 && y == 0).then_some(fault));
        nfu.reset();
        assert!(nfu.any_stuck());
        assert_eq!(nfu.pe(1, 0).stuck(), Some(fault));
        assert_eq!(nfu.pe(0, 0).stuck(), None);
        nfu.set_stuck_faults(|_, _| None);
        assert_eq!(nfu.pe(1, 0).stuck(), None);
        assert!(!nfu.any_stuck());
    }

    #[test]
    fn bulk_receive_and_propagate_match_view_calls() {
        let mut bulk = Nfu::new(3, 2);
        let mut scalar = Nfu::new(3, 2);
        for nfu in [&mut bulk, &mut scalar] {
            nfu.set_fifo_depths(1, 1);
            for y in 0..2 {
                for x in 0..3 {
                    nfu.pe_mut(x, y).reset_accumulator(Fx::ZERO);
                }
            }
        }
        let vals: Vec<Fx> = (1..=4).map(Fx::from_int).collect();
        let k = Fx::from_f32(2.0);
        bulk.receive_mac((2, 2), &vals, k, true);
        for py in 0..2 {
            for dx in 0..2 {
                let v = vals[py * 2 + dx];
                let mut pe = scalar.pe_mut(dx, py);
                pe.push_h(v);
                pe.push_v(v);
                pe.mac(v, k);
            }
        }
        for y in 0..2 {
            for x in 0..3 {
                assert_eq!(
                    bulk.pe(x, y).accumulator(),
                    scalar.pe(x, y).accumulator(),
                    "accumulator mismatch at ({x},{y})"
                );
                assert_eq!(bulk.pe(x, y).fifo_len(), scalar.pe(x, y).fifo_len());
            }
        }
        // Horizontal propagation: column 0 pops column 1's FIFO-H.
        let mut got = vec![Fx::ZERO; 4];
        bulk.propagate_h_block((2, 2), &mut got);
        let mut want = [Fx::ZERO; 4];
        for py in 0..2 {
            want[py * 2] = scalar.propagate_from_right(0, py);
        }
        assert_eq!(got[0], want[0]);
        assert_eq!(got[2], want[2]);
        let mut acc = Vec::new();
        bulk.read_accumulators_into((2, 2), &mut acc);
        assert_eq!(acc.len(), 4);
        assert_eq!(acc[3], bulk.pe(1, 1).accumulator());
    }
}
