//! The Neural Functional Unit: a 2D mesh of PEs (Fig. 5).

use crate::pe::Pe;
use crate::stats::LayerStats;

/// The `Px × Py` PE mesh with its inter-PE propagation topology.
///
/// PEs are addressed by `(x, y)` with `x` the column and `y` the row. Data
/// propagates right-to-left (a PE pops its **right** neighbour's FIFO-H)
/// and bottom-to-top (a PE pops the FIFO-V of the PE **below** it),
/// matching §5.1's "each PE can send locally-stored input neurons to its
/// left and lower neighbors" as seen from the receiving side of Fig. 13's
/// walkthrough.
#[derive(Clone, Debug)]
pub struct Nfu {
    px: usize,
    py: usize,
    pes: Vec<Pe>,
}

impl Nfu {
    /// Creates a mesh of idle PEs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(px: usize, py: usize) -> Nfu {
        assert!(px > 0 && py > 0, "NFU mesh must be non-empty");
        Nfu {
            px,
            py,
            pes: (0..px * py).map(|_| Pe::new()).collect(),
        }
    }

    /// Mesh columns (`Px`).
    #[inline]
    pub fn px(&self) -> usize {
        self.px
    }

    /// Mesh rows (`Py`).
    #[inline]
    pub fn py(&self) -> usize {
        self.py
    }

    /// Total PE count.
    #[inline]
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// Always false (the mesh is non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The PE at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn pe(&self, x: usize, y: usize) -> &Pe {
        assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        &self.pes[y * self.px + x]
    }

    /// Mutable access to the PE at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn pe_mut(&mut self, x: usize, y: usize) -> &mut Pe {
        assert!(x < self.px && y < self.py, "PE ({x},{y}) out of range");
        &mut self.pes[y * self.px + x]
    }

    /// Pops the FIFO-H of the PE to the right of `(x, y)` — the horizontal
    /// inter-PE propagation of Fig. 13 cycles #1–#2.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is the rightmost column (it has no right
    /// neighbour and must read from NBin instead).
    pub fn propagate_from_right(&mut self, x: usize, y: usize) -> shidiannao_fixed::Fx {
        assert!(x + 1 < self.px, "PE ({x},{y}) has no right neighbour");
        self.pe_mut(x + 1, y).pop_h()
    }

    /// Pops the FIFO-V of the PE below `(x, y)` — the vertical inter-PE
    /// propagation of Fig. 13 cycle #3.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is the bottom row.
    pub fn propagate_from_below(&mut self, x: usize, y: usize) -> shidiannao_fixed::Fx {
        assert!(y + 1 < self.py, "PE ({x},{y}) has no lower neighbour");
        self.pe_mut(x, y + 1).pop_v()
    }

    /// Restores every PE to its power-on state (see [`Pe::reset`]), so a
    /// mesh reused across inferences is indistinguishable from a freshly
    /// constructed one — including the FIFO peak-occupancy counters the
    /// §5.1 sizing tests read.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
    }

    /// Configures every PE's FIFO depths for a window pass (§5.1 sizing:
    /// `Sx` and `Sy`).
    pub fn set_fifo_depths(&mut self, h_depth: usize, v_depth: usize) {
        for pe in &mut self.pes {
            pe.set_fifo_depths(h_depth, v_depth);
        }
    }

    /// Clears every PE's FIFO-H (kernel-row boundary).
    pub fn clear_fifos_h(&mut self) {
        for pe in &mut self.pes {
            pe.clear_h();
        }
    }

    /// Clears every PE's FIFO-V (window-pass boundary).
    pub fn clear_fifos_v(&mut self) {
        for pe in &mut self.pes {
            pe.clear_v();
        }
    }

    /// Installs per-PE stuck-at faults from a map of `(x, y)` to fault
    /// descriptor. Passing a closure that always returns `None` clears any
    /// previously installed faults. Stuck faults survive [`Nfu::reset`].
    pub fn set_stuck_faults(
        &mut self,
        f: impl Fn(usize, usize) -> Option<shidiannao_faults::PeStuck>,
    ) {
        for y in 0..self.py {
            for x in 0..self.px {
                self.pes[y * self.px + x].set_stuck(f(x, y));
            }
        }
    }

    /// Folds all PEs' peak FIFO occupancies into the layer statistics.
    pub fn record_fifo_peaks(&self, stats: &mut LayerStats) {
        for pe in &self.pes {
            let (h, v) = pe.fifo_peaks();
            stats.fifo_h_peak = stats.fifo_h_peak.max(h);
            stats.fifo_v_peak = stats.fifo_v_peak.max(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_fixed::Fx;

    #[test]
    fn mesh_geometry() {
        let nfu = Nfu::new(8, 8);
        assert_eq!(nfu.len(), 64);
        assert_eq!((nfu.px(), nfu.py()), (8, 8));
        assert!(!nfu.is_empty());
    }

    #[test]
    fn horizontal_propagation_moves_right_to_left() {
        let mut nfu = Nfu::new(2, 1);
        nfu.pe_mut(1, 0).push_h(Fx::from_int(7));
        assert_eq!(nfu.propagate_from_right(0, 0), Fx::from_int(7));
    }

    #[test]
    fn vertical_propagation_moves_bottom_to_top() {
        let mut nfu = Nfu::new(1, 2);
        nfu.pe_mut(0, 1).push_v(Fx::from_int(9));
        assert_eq!(nfu.propagate_from_below(0, 0), Fx::from_int(9));
    }

    #[test]
    #[should_panic(expected = "no right neighbour")]
    fn rightmost_column_cannot_propagate() {
        let mut nfu = Nfu::new(2, 2);
        let _ = nfu.propagate_from_right(1, 0);
    }

    #[test]
    #[should_panic(expected = "no lower neighbour")]
    fn bottom_row_cannot_propagate() {
        let mut nfu = Nfu::new(2, 2);
        let _ = nfu.propagate_from_below(0, 1);
    }

    #[test]
    fn clears_affect_all_pes() {
        let mut nfu = Nfu::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                nfu.pe_mut(x, y).push_h(Fx::ZERO);
                nfu.pe_mut(x, y).push_v(Fx::ZERO);
            }
        }
        nfu.clear_fifos_h();
        assert_eq!(nfu.pe(1, 1).fifo_len(), (0, 1));
        nfu.clear_fifos_v();
        assert_eq!(nfu.pe(1, 1).fifo_len(), (0, 0));
    }

    #[test]
    fn peaks_fold_into_stats() {
        let mut nfu = Nfu::new(2, 1);
        nfu.set_fifo_depths(2, 2);
        nfu.pe_mut(0, 0).push_h(Fx::ZERO);
        nfu.pe_mut(0, 0).push_h(Fx::ZERO);
        nfu.pe_mut(1, 0).push_v(Fx::ZERO);
        let mut stats = LayerStats::new("t");
        nfu.record_fifo_peaks(&mut stats);
        assert_eq!(stats.fifo_h_peak, 2);
        assert_eq!(stats.fifo_v_peak, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pe_access_is_bounds_checked() {
        let nfu = Nfu::new(2, 2);
        let _ = nfu.pe(2, 0);
    }

    #[test]
    fn stuck_faults_install_per_pe_and_survive_reset() {
        use shidiannao_faults::{PeStuck, PeStuckTarget};
        let mut nfu = Nfu::new(2, 2);
        let fault = PeStuck {
            mask: 1,
            value: 1,
            target: PeStuckTarget::Output,
        };
        nfu.set_stuck_faults(|x, y| (x == 1 && y == 0).then_some(fault));
        nfu.reset();
        assert_eq!(nfu.pe(1, 0).stuck(), Some(fault));
        assert_eq!(nfu.pe(0, 0).stuck(), None);
        nfu.set_stuck_faults(|_, _| None);
        assert_eq!(nfu.pe(1, 0).stuck(), None);
    }
}
