//! Accelerator configuration (Table 3).

use core::fmt;

/// Configuration of a ShiDianNao accelerator instance.
///
/// The defaults of [`AcceleratorConfig::paper`] reproduce Table 3's
/// evaluated design: an 8 × 8 PE mesh, 64 KB NBin, 64 KB NBout, 128 KB SB,
/// 32 KB IB, at 1 GHz. The PE grid and buffer sizes are configurable for
/// the design-space ablations (Fig. 7's PE sweep).
///
/// # Examples
///
/// ```
/// use shidiannao_core::AcceleratorConfig;
/// let cfg = AcceleratorConfig::paper();
/// assert_eq!(cfg.pe_count(), 64);
/// assert_eq!(cfg.sram_bytes(), 288 * 1024);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// PE mesh columns (`Px`).
    pub pe_cols: usize,
    /// PE mesh rows (`Py`).
    pub pe_rows: usize,
    /// NBin capacity in bytes.
    pub nbin_bytes: usize,
    /// NBout capacity in bytes.
    pub nbout_bytes: usize,
    /// Synapse buffer capacity in bytes.
    pub sb_bytes: usize,
    /// Instruction buffer capacity in bytes.
    pub ib_bytes: usize,
    /// Clock frequency in GHz (the paper's layout runs at 1 GHz).
    pub frequency_ghz: f64,
    /// Enables inter-PE data propagation through the FIFOs (§5.1). The
    /// `false` setting is the Fig. 7 ablation: every PE input is re-read
    /// from NBin.
    pub inter_pe_propagation: bool,
    /// ALU lane count: how many activation/division operations retire per
    /// cycle. Modeled as one lane per PE column, matching the Px-wide
    /// output register array the ALU drains.
    pub alu_lanes: usize,
    /// Enables the §10.2 design alternative the paper rejected: packing
    /// several small output feature maps onto the PE array simultaneously.
    /// Off in the paper design; the `ablation_multimap` bench measures the
    /// trade-off.
    pub multi_map_packing: bool,
    /// Charges the serialization stalls a banked NB SRAM incurs when one
    /// request needs several rows of the same bank (possible only for
    /// strided reads — the paper's six modes are conflict-free at stride
    /// 1). The paper's controller is idealized (off by default); conflict
    /// cycles are always *measured* into
    /// [`LayerStats::bank_conflict_cycles`](crate::LayerStats).
    pub model_bank_conflicts: bool,
}

impl AcceleratorConfig {
    /// The evaluated 8 × 8 design of Table 3.
    pub fn paper() -> AcceleratorConfig {
        AcceleratorConfig {
            pe_cols: 8,
            pe_rows: 8,
            nbin_bytes: 64 * 1024,
            nbout_bytes: 64 * 1024,
            sb_bytes: 128 * 1024,
            ib_bytes: 32 * 1024,
            frequency_ghz: 1.0,
            inter_pe_propagation: true,
            alu_lanes: 8,
            multi_map_packing: false,
            model_bank_conflicts: false,
        }
    }

    /// A paper-parameter design with a different PE mesh (used by the
    /// Fig. 7 bandwidth sweep). ALU lanes track the column count.
    pub fn with_pe_grid(cols: usize, rows: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            pe_cols: cols,
            pe_rows: rows,
            alu_lanes: cols.max(1),
            ..AcceleratorConfig::paper()
        }
    }

    /// Disables inter-PE propagation (Fig. 7's "without" series).
    pub fn without_propagation(mut self) -> AcceleratorConfig {
        self.inter_pe_propagation = false;
        self
    }

    /// Enables multi-map packing (the rejected §10.2 alternative).
    pub fn with_multi_map_packing(mut self) -> AcceleratorConfig {
        self.multi_map_packing = true;
        self
    }

    /// Enables bank-conflict stall modeling for the NB SRAMs.
    pub fn with_bank_conflicts(mut self) -> AcceleratorConfig {
        self.model_bank_conflicts = true;
        self
    }

    /// Number of processing elements (`Px × Py`).
    #[inline]
    pub fn pe_count(&self) -> usize {
        self.pe_cols * self.pe_rows
    }

    /// Total on-chip SRAM in bytes (NBin + NBout + SB + IB); 288 KB for the
    /// paper design (§10.1).
    #[inline]
    pub fn sram_bytes(&self) -> usize {
        self.nbin_bytes + self.nbout_bytes + self.sb_bytes + self.ib_bytes
    }

    /// NB bank count per buffer: `2 × Py` (§6).
    #[inline]
    pub fn nb_banks(&self) -> usize {
        2 * self.pe_rows
    }

    /// NB bank width in bytes: `Px × 2` (§6).
    #[inline]
    pub fn nb_bank_width_bytes(&self) -> usize {
        self.pe_cols * 2
    }

    /// Cycle time in nanoseconds.
    #[inline]
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.frequency_ghz
    }

    /// Peak throughput in fixed-point GOP/s, counting one multiply and one
    /// add per PE per cycle.
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.pe_count() as f64 * self.frequency_ghz
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a dimension or capacity is zero or the
    /// frequency is not positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pe_cols == 0 || self.pe_rows == 0 {
            return Err(ConfigError::new("PE mesh must be non-empty"));
        }
        if self.nbin_bytes == 0 || self.nbout_bytes == 0 || self.sb_bytes == 0 {
            return Err(ConfigError::new("buffer capacities must be non-zero"));
        }
        if self.ib_bytes == 0 {
            return Err(ConfigError::new("instruction buffer must be non-zero"));
        }
        if self.frequency_ghz <= 0.0 || self.frequency_ghz.is_nan() {
            return Err(ConfigError::new("frequency must be positive"));
        }
        if self.alu_lanes == 0 {
            return Err(ConfigError::new("ALU must have at least one lane"));
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    fn default() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }
}

/// Error returned by [`AcceleratorConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> ConfigError {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accelerator configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table3() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.pe_count(), 64);
        assert_eq!(c.nbin_bytes, 65_536);
        assert_eq!(c.nbout_bytes, 65_536);
        assert_eq!(c.sb_bytes, 131_072);
        assert_eq!(c.ib_bytes, 32_768);
        assert_eq!(c.sram_bytes(), 288 * 1024);
        assert_eq!(c.nb_banks(), 16);
        assert_eq!(c.nb_bank_width_bytes(), 16);
        assert!(c.validate().is_ok());
        assert_eq!(AcceleratorConfig::default(), c);
    }

    #[test]
    fn peak_gops_scales_with_pes() {
        assert_eq!(AcceleratorConfig::paper().peak_gops(), 128.0);
        assert_eq!(AcceleratorConfig::with_pe_grid(4, 4).peak_gops(), 32.0);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = AcceleratorConfig::paper();
        c.pe_cols = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.sb_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.frequency_ghz = 0.0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.alu_lanes = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("ALU"));
    }

    #[test]
    fn ablation_toggle() {
        let c = AcceleratorConfig::paper().without_propagation();
        assert!(!c.inter_pe_propagation);
        assert!(!c.multi_map_packing);
        assert!(
            AcceleratorConfig::paper()
                .with_multi_map_packing()
                .multi_map_packing
        );
    }

    #[test]
    fn cycle_time() {
        assert_eq!(AcceleratorConfig::paper().cycle_ns(), 1.0);
    }
}
