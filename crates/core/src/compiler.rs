//! The network-to-instruction compiler (§7.2).

use crate::isa::{Fields, Instruction, Opcode, INSTRUCTION_BYTES};
use core::fmt;
use core::sync::atomic::AtomicU64;
use shidiannao_cnn::{Layer, LayerBody, Network, PoolKind};

/// Process-wide count of [`compile`] invocations (diagnostic).
static COMPILE_CALLS: AtomicU64 = AtomicU64::new(0);

/// How many times [`compile`] has run in this process. Tests use this to
/// assert that a prepared-network pipeline compiles each topology exactly
/// once, no matter how many inferences it executes.
pub fn compile_calls() -> u64 {
    COMPILE_CALLS.load(core::sync::atomic::Ordering::Relaxed)
}

/// Error produced while lowering a network to the 61-bit ISA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compile network: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// A compiled control program: the instruction stream the IB holds and the
/// decoder walks.
///
/// Granularity follows the HFSM design: one instruction per *output
/// feature map* for convolutional and pooling layers (the second-level
/// states expand it into per-cycle control), one per classifier /
/// normalization layer, plus `LoadImage`, per-layer `SwapBuffers`, and a
/// final `End`. A LeNet-5-class CNN compiles to a few hundred bytes,
/// reproducing §7.2's observation that ~1 KB of instruction storage
/// replaces a ≥600 KB raw control store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program is empty (never for compiled networks).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// IB footprint in bytes (8 bytes per 61-bit instruction).
    pub fn bytes(&self) -> usize {
        self.instructions.len() * INSTRUCTION_BYTES
    }

    /// Instructions belonging to layer `index` (excluding load/swap/end
    /// plumbing) — used by the executor to charge IB fetches.
    pub fn layer_instruction_count(&self, network: &Network, index: usize) -> usize {
        let layer = &network.layers()[index];
        match layer.body() {
            LayerBody::Conv { .. } | LayerBody::Pool { .. } => layer.out_maps(),
            _ => 1,
        }
    }
}

fn activation_of(layer: &Layer) -> shidiannao_cnn::Activation {
    match layer.body() {
        LayerBody::Conv { activation, .. }
        | LayerBody::Pool { activation, .. }
        | LayerBody::Fc { activation, .. } => *activation,
        _ => shidiannao_cnn::Activation::None,
    }
}

/// Lowers a network to its control program.
///
/// # Errors
///
/// Returns [`CompileError`] when a dimension exceeds the ISA's field
/// widths (e.g. feature maps wider than 511 neurons).
pub fn compile(network: &Network) -> Result<Program, CompileError> {
    COMPILE_CALLS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    let mut instructions = Vec::new();
    let err = |layer: usize, e: crate::isa::EncodeError| CompileError {
        message: format!("layer {layer}: {e}"),
    };

    instructions.push(
        Instruction::encode(&Fields {
            opcode: Opcode::LoadImage,
            out_w: network.input_dims().0 as u16,
            out_h: network.input_dims().1 as u16,
            in_maps: network.input_maps() as u16,
            ..Fields::default()
        })
        .map_err(|e| err(0, e))?,
    );

    for (i, layer) in network.layers().iter().enumerate() {
        let (ow, oh) = layer.out_dims();
        let act = activation_of(layer);
        match layer.body() {
            LayerBody::Conv {
                table,
                kernel,
                stride,
                ..
            } => {
                for o in 0..layer.out_maps() {
                    instructions.push(
                        Instruction::encode(&Fields {
                            opcode: Opcode::Conv,
                            out_w: ow as u16,
                            out_h: oh as u16,
                            kx: kernel.0 as u8,
                            ky: kernel.1 as u8,
                            sx: stride.0 as u8,
                            sy: stride.1 as u8,
                            in_maps: table.inputs_of(o).len() as u16,
                            out_sel: o as u16,
                            act,
                            flag: false,
                        })
                        .map_err(|e| err(i, e))?,
                    );
                }
            }
            LayerBody::Pool {
                window,
                stride,
                kind,
                ..
            } => {
                for m in 0..layer.out_maps() {
                    instructions.push(
                        Instruction::encode(&Fields {
                            opcode: Opcode::Pool,
                            out_w: ow as u16,
                            out_h: oh as u16,
                            kx: window.0 as u8,
                            ky: window.1 as u8,
                            sx: stride.0 as u8,
                            sy: stride.1 as u8,
                            in_maps: 1,
                            out_sel: m as u16,
                            act,
                            flag: *kind == PoolKind::Avg,
                        })
                        .map_err(|e| err(i, e))?,
                    );
                }
            }
            LayerBody::Fc { .. } => {
                instructions.push(
                    Instruction::encode(&Fields {
                        opcode: Opcode::Classifier,
                        out_w: 1,
                        out_h: 1,
                        kx: layer.in_dims().0.min(31) as u8,
                        ky: layer.in_dims().1.min(31) as u8,
                        in_maps: layer.in_maps().min(511) as u16,
                        out_sel: layer.out_maps() as u16,
                        act,
                        ..Fields::default()
                    })
                    .map_err(|e| err(i, e))?,
                );
            }
            LayerBody::Lrn(spec) => {
                instructions.push(
                    Instruction::encode(&Fields {
                        opcode: Opcode::Lrn,
                        out_w: ow as u16,
                        out_h: oh as u16,
                        kx: spec.window_maps as u8,
                        in_maps: layer.in_maps() as u16,
                        out_sel: layer.out_maps().min(511) as u16,
                        ..Fields::default()
                    })
                    .map_err(|e| err(i, e))?,
                );
            }
            LayerBody::Lcn { spec, .. } => {
                instructions.push(
                    Instruction::encode(&Fields {
                        opcode: Opcode::Lcn,
                        out_w: ow as u16,
                        out_h: oh as u16,
                        kx: spec.window as u8,
                        ky: spec.window as u8,
                        in_maps: layer.in_maps() as u16,
                        out_sel: layer.out_maps().min(511) as u16,
                        ..Fields::default()
                    })
                    .map_err(|e| err(i, e))?,
                );
            }
        }
        instructions.push(
            Instruction::encode(&Fields {
                opcode: Opcode::SwapBuffers,
                ..Fields::default()
            })
            .map_err(|e| err(i, e))?,
        );
    }

    instructions.push(
        Instruction::encode(&Fields {
            opcode: Opcode::End,
            ..Fields::default()
        })
        .map_err(|e| err(usize::MAX, e))?,
    );

    Ok(Program { instructions })
}

/// Checks a compiled program against the network it claims to encode:
/// every decoded instruction's geometry must match the corresponding
/// layer. This is the decoder-side contract the executor relies on.
///
/// # Errors
///
/// Returns [`CompileError`] describing the first mismatch.
pub fn validate(program: &Program, network: &Network) -> Result<(), CompileError> {
    let err = |msg: String| CompileError { message: msg };
    let mut stream = program.instructions().iter();
    let mut next = || -> Result<crate::isa::Fields, CompileError> {
        stream
            .next()
            .ok_or_else(|| err("program ends early".into()))?
            .decode()
            .map_err(&err)
    };
    let first = next()?;
    if first.opcode != Opcode::LoadImage
        || (first.out_w as usize, first.out_h as usize) != network.input_dims()
        || first.in_maps as usize != network.input_maps()
    {
        return Err(err(
            "LoadImage header does not match the network input".into()
        ));
    }
    for (i, layer) in network.layers().iter().enumerate() {
        let (ow, oh) = layer.out_dims();
        match layer.body() {
            LayerBody::Conv {
                table,
                kernel,
                stride,
                ..
            } => {
                for o in 0..layer.out_maps() {
                    let f = next()?;
                    let ok = f.opcode == Opcode::Conv
                        && (f.out_w as usize, f.out_h as usize) == (ow, oh)
                        && (f.kx as usize, f.ky as usize) == *kernel
                        && (f.sx as usize, f.sy as usize) == *stride
                        && f.in_maps as usize == table.inputs_of(o).len()
                        && f.out_sel as usize == o;
                    if !ok {
                        return Err(err(format!("layer {i} map {o}: conv mismatch")));
                    }
                }
            }
            LayerBody::Pool {
                window,
                stride,
                kind,
                ..
            } => {
                for m in 0..layer.out_maps() {
                    let f = next()?;
                    let ok = f.opcode == Opcode::Pool
                        && (f.kx as usize, f.ky as usize) == *window
                        && (f.sx as usize, f.sy as usize) == *stride
                        && f.out_sel as usize == m
                        && f.flag == (*kind == PoolKind::Avg);
                    if !ok {
                        return Err(err(format!("layer {i} map {m}: pool mismatch")));
                    }
                }
            }
            LayerBody::Fc { .. } => {
                let f = next()?;
                if f.opcode != Opcode::Classifier || f.out_sel as usize != layer.out_maps() {
                    return Err(err(format!("layer {i}: classifier mismatch")));
                }
            }
            LayerBody::Lrn(_) => {
                let f = next()?;
                if f.opcode != Opcode::Lrn {
                    return Err(err(format!("layer {i}: LRN mismatch")));
                }
            }
            LayerBody::Lcn { .. } => {
                let f = next()?;
                if f.opcode != Opcode::Lcn {
                    return Err(err(format!("layer {i}: LCN mismatch")));
                }
            }
        }
        let f = next()?;
        if f.opcode != Opcode::SwapBuffers {
            return Err(err(format!("layer {i}: missing buffer swap")));
        }
    }
    let f = next()?;
    if f.opcode != Opcode::End {
        return Err(err("program does not end with End".into()));
    }
    if stream.next().is_some() {
        return Err(err("trailing instructions after End".into()));
    }
    Ok(())
}

/// Bytes a raw control store would need for the same execution: 97 bits of
/// control signals per cycle (§7.2's rejected alternative, the ablation
/// baseline for `ablation_isa_size`).
pub fn raw_control_store_bytes(cycles: u64) -> u64 {
    (cycles * 97).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn lenet_compiles_compactly() {
        let net = zoo::lenet5().build(0).unwrap();
        let p = compile(&net).unwrap();
        // Load + (6 conv + 6 pool + 16 conv + 16 pool + 3 fc) + 7 swaps + end.
        assert_eq!(p.len(), 1 + 6 + 6 + 16 + 16 + 3 + 7 + 1);
        assert!(p.bytes() < 1024, "LeNet-5 program is {} bytes", p.bytes());
        assert!(!p.is_empty());
    }

    #[test]
    fn program_starts_with_load_and_ends_with_end() {
        let net = zoo::gabor().build(0).unwrap();
        let p = compile(&net).unwrap();
        let first = p.instructions()[0].decode().unwrap();
        assert_eq!(first.opcode, Opcode::LoadImage);
        assert_eq!((first.out_w, first.out_h), (20, 20));
        let last = p.instructions().last().unwrap().decode().unwrap();
        assert_eq!(last.opcode, Opcode::End);
    }

    #[test]
    fn conv_instructions_carry_geometry() {
        let net = zoo::lenet5().build(0).unwrap();
        let p = compile(&net).unwrap();
        let c1 = p.instructions()[1].decode().unwrap();
        assert_eq!(c1.opcode, Opcode::Conv);
        assert_eq!((c1.out_w, c1.out_h), (28, 28));
        assert_eq!((c1.kx, c1.ky), (5, 5));
        assert_eq!((c1.sx, c1.sy), (1, 1));
    }

    #[test]
    fn every_benchmark_compiles_under_ib_capacity() {
        for b in zoo::all() {
            let net = b.build(0).unwrap();
            let p = compile(&net).unwrap();
            assert!(
                p.bytes() <= 32 * 1024,
                "{} program is {} bytes",
                net.name(),
                p.bytes()
            );
        }
    }

    #[test]
    fn raw_control_store_matches_paper_example() {
        // §7.2: 97 bits × 50K cycles ≈ 600 KB.
        let bytes = raw_control_store_bytes(50_000);
        assert!(bytes > 590_000 && bytes < 610_000, "{bytes}");
    }

    #[test]
    fn compiled_programs_validate_for_every_benchmark() {
        for b in zoo::all() {
            let net = b.build(0).unwrap();
            let p = compile(&net).unwrap();
            validate(&p, &net).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        }
        for b in zoo::extended::all() {
            let net = b.build(0).unwrap();
            validate(&compile(&net).unwrap(), &net).unwrap();
        }
    }

    #[test]
    fn validation_rejects_a_foreign_program() {
        let lenet = zoo::lenet5().build(0).unwrap();
        let gabor = zoo::gabor().build(0).unwrap();
        let p = compile(&gabor).unwrap();
        assert!(validate(&p, &lenet).is_err());
    }

    #[test]
    fn layer_instruction_counts() {
        let net = zoo::lenet5().build(0).unwrap();
        let p = compile(&net).unwrap();
        assert_eq!(p.layer_instruction_count(&net, 0), 6);
        assert_eq!(p.layer_instruction_count(&net, 2), 16);
        assert_eq!(p.layer_instruction_count(&net, 4), 1);
    }
}
