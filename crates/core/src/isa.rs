//! The 61-bit control instruction format (§7.2).
//!
//! The paper encodes each HFSM state plus its parameters into a 61-bit
//! instruction, decoded into detailed control signals over many cycles; a
//! typical CNN needs only ~1 KB of instruction storage instead of the
//! ~600 KB a raw 97-bits-per-cycle control store would take. This module
//! implements a concrete 61-bit packing:
//!
//! ```text
//! bits  0..4   opcode                 (first-level HFSM state)
//! bits  4..13  out_w    (9 bits)
//! bits 13..22  out_h    (9 bits)
//! bits 22..27  kx       (5 bits)      kernel / window / LRN-M / LCN width
//! bits 27..32  ky       (5 bits)
//! bits 32..36  sx       (4 bits)
//! bits 36..40  sy       (4 bits)
//! bits 40..49  in_maps  (9 bits)
//! bits 49..58  out_sel  (9 bits)      output map index or output count
//! bits 58..60  act      (2 bits)
//! bit  60      flag                   pool kind (0 = max, 1 = avg)
//! ```

use core::fmt;
use shidiannao_cnn::Activation;

/// First-level HFSM states that appear as instruction opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Stream the input image into NBin.
    LoadImage = 0,
    /// Execute one output feature map of a convolutional layer.
    Conv = 1,
    /// Execute one feature map of a pooling layer.
    Pool = 2,
    /// Execute a classifier layer.
    Classifier = 3,
    /// Execute an LRN layer.
    Lrn = 4,
    /// Execute an LCN layer.
    Lcn = 5,
    /// Swap NBin/NBout roles (a layer finished).
    SwapBuffers = 6,
    /// Stop: results are ready in NBout.
    End = 7,
}

impl Opcode {
    fn from_bits(v: u64) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::LoadImage,
            1 => Opcode::Conv,
            2 => Opcode::Pool,
            3 => Opcode::Classifier,
            4 => Opcode::Lrn,
            5 => Opcode::Lcn,
            6 => Opcode::SwapBuffers,
            7 => Opcode::End,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The decoded fields of one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fields {
    /// First-level state.
    pub opcode: Opcode,
    /// Output feature-map width.
    pub out_w: u16,
    /// Output feature-map height.
    pub out_h: u16,
    /// Kernel / window width (also LRN map-window and LCN window).
    pub kx: u8,
    /// Kernel / window height.
    pub ky: u8,
    /// Horizontal stride.
    pub sx: u8,
    /// Vertical stride.
    pub sy: u8,
    /// Input map count.
    pub in_maps: u16,
    /// Output map index (conv/pool) or output count (classifier).
    pub out_sel: u16,
    /// ALU activation.
    pub act: Activation,
    /// Pool kind flag (0 = max, 1 = avg); unused elsewhere.
    pub flag: bool,
}

impl Default for Fields {
    fn default() -> Fields {
        Fields {
            opcode: Opcode::End,
            out_w: 0,
            out_h: 0,
            kx: 0,
            ky: 0,
            sx: 1,
            sy: 1,
            in_maps: 0,
            out_sel: 0,
            act: Activation::None,
            flag: false,
        }
    }
}

/// Error returned when a field does not fit its bit allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeError {
    field: &'static str,
    value: u64,
    max: u64,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field {} = {} exceeds its 61-bit allocation (max {})",
            self.field, self.value, self.max
        )
    }
}

impl std::error::Error for EncodeError {}

/// A packed 61-bit control instruction.
///
/// # Examples
///
/// ```
/// use shidiannao_core::isa::{Fields, Instruction, Opcode};
///
/// let f = Fields {
///     opcode: Opcode::Conv,
///     out_w: 28,
///     out_h: 28,
///     kx: 5,
///     ky: 5,
///     in_maps: 1,
///     out_sel: 0,
///     ..Fields::default()
/// };
/// let inst = Instruction::encode(&f).unwrap();
/// assert_eq!(inst.decode().unwrap(), f);
/// assert!(inst.to_bits() < 1 << 61);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instruction(u64);

/// Width of one instruction in bits, as in §7.2.
pub const INSTRUCTION_BITS: u32 = 61;

/// Storage one instruction occupies in the IB (padded to 8 bytes).
pub const INSTRUCTION_BYTES: usize = 8;

fn check(field: &'static str, value: u64, bits: u32) -> Result<u64, EncodeError> {
    let max = (1u64 << bits) - 1;
    if value > max {
        Err(EncodeError { field, value, max })
    } else {
        Ok(value)
    }
}

impl Instruction {
    /// Packs the fields.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if any field exceeds its allocation.
    pub fn encode(f: &Fields) -> Result<Instruction, EncodeError> {
        let act = match f.act {
            Activation::None => 0u64,
            Activation::Tanh => 1,
            Activation::Sigmoid => 2,
        };
        let bits = (f.opcode as u64)
            | check("out_w", f.out_w as u64, 9)? << 4
            | check("out_h", f.out_h as u64, 9)? << 13
            | check("kx", f.kx as u64, 5)? << 22
            | check("ky", f.ky as u64, 5)? << 27
            | check("sx", f.sx as u64, 4)? << 32
            | check("sy", f.sy as u64, 4)? << 36
            | check("in_maps", f.in_maps as u64, 9)? << 40
            | check("out_sel", f.out_sel as u64, 9)? << 49
            | act << 58
            | (f.flag as u64) << 60;
        Ok(Instruction(bits))
    }

    /// Unpacks the fields.
    ///
    /// # Errors
    ///
    /// Returns a message if the opcode or activation code is invalid
    /// (possible only for raw bit patterns, not encoded instructions).
    pub fn decode(self) -> Result<Fields, String> {
        let opcode = Opcode::from_bits(self.0 & 0xF)
            .ok_or_else(|| format!("invalid opcode {:#x}", self.0 & 0xF))?;
        let act = match (self.0 >> 58) & 0x3 {
            0 => Activation::None,
            1 => Activation::Tanh,
            2 => Activation::Sigmoid,
            other => return Err(format!("invalid activation code {other}")),
        };
        Ok(Fields {
            opcode,
            out_w: ((self.0 >> 4) & 0x1FF) as u16,
            out_h: ((self.0 >> 13) & 0x1FF) as u16,
            kx: ((self.0 >> 22) & 0x1F) as u8,
            ky: ((self.0 >> 27) & 0x1F) as u8,
            sx: ((self.0 >> 32) & 0xF) as u8,
            sy: ((self.0 >> 36) & 0xF) as u8,
            in_maps: ((self.0 >> 40) & 0x1FF) as u16,
            out_sel: ((self.0 >> 49) & 0x1FF) as u16,
            act,
            flag: (self.0 >> 60) & 1 == 1,
        })
    }

    /// The raw bit pattern (fits in 61 bits).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Builds an instruction from raw bits.
    #[inline]
    pub fn from_bits(bits: u64) -> Instruction {
        Instruction(bits)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.decode() {
            Ok(d) => write!(
                f,
                "{} out={}x{} k={}x{} s={}x{} in_maps={} sel={}",
                d.opcode, d.out_w, d.out_h, d.kx, d.ky, d.sx, d.sy, d.in_maps, d.out_sel
            ),
            Err(_) => write!(f, "<invalid {:#x}>", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fields {
        Fields {
            opcode: Opcode::Conv,
            out_w: 511,
            out_h: 1,
            kx: 31,
            ky: 7,
            sx: 15,
            sy: 2,
            in_maps: 300,
            out_sel: 255,
            act: Activation::Sigmoid,
            flag: true,
        }
    }

    #[test]
    fn roundtrip_all_fields() {
        let f = sample();
        let i = Instruction::encode(&f).unwrap();
        assert_eq!(i.decode().unwrap(), f);
    }

    #[test]
    fn fits_sixty_one_bits() {
        let i = Instruction::encode(&sample()).unwrap();
        assert!(i.to_bits() < 1u64 << INSTRUCTION_BITS);
    }

    #[test]
    fn overflow_is_reported_per_field() {
        let mut f = sample();
        f.out_w = 512;
        let err = Instruction::encode(&f).unwrap_err();
        assert!(err.to_string().contains("out_w"));
        assert!(err.to_string().contains("512"));
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for op in [
            Opcode::LoadImage,
            Opcode::Conv,
            Opcode::Pool,
            Opcode::Classifier,
            Opcode::Lrn,
            Opcode::Lcn,
            Opcode::SwapBuffers,
            Opcode::End,
        ] {
            let f = Fields {
                opcode: op,
                ..Fields::default()
            };
            let i = Instruction::encode(&f).unwrap();
            assert_eq!(i.decode().unwrap().opcode, op);
        }
    }

    #[test]
    fn invalid_raw_bits_rejected() {
        let i = Instruction::from_bits(0x8); // opcode 8 does not exist
        assert!(i.decode().is_err());
        let bad_act = Instruction::from_bits(3 << 58);
        assert!(bad_act.decode().is_err());
    }

    #[test]
    fn display_is_informative() {
        let i = Instruction::encode(&Fields {
            opcode: Opcode::Pool,
            out_w: 14,
            out_h: 14,
            kx: 2,
            ky: 2,
            sx: 2,
            sy: 2,
            ..Fields::default()
        })
        .unwrap();
        let s = i.to_string();
        assert!(s.contains("Pool"));
        assert!(s.contains("14x14"));
        assert!(Instruction::from_bits(0x8).to_string().contains("invalid"));
    }
}
