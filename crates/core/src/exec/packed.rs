//! The §10.2 design alternative ShiDianNao considered and rejected:
//! "allowing different PEs to simultaneously work on different feature
//! maps" when output maps are smaller than the PE array.
//!
//! The paper: "we played with the idea of alleviating this issue by
//! adding complicated control logic to each PE … we ultimately decided
//! against this option as it appeared a poor trade-off with a detrimental
//! impact on the programming model." This module implements the
//! alternative so the trade-off can be *measured* (see the
//! `ablation_multimap` bench): PE utilization improves on benchmarks like
//! Simple Conv, but every packed sub-block needs its own NB gather and
//! its own SB kernel stream each cycle (the "large MUX mesh"), and the
//! regular inter-PE propagation schedule no longer applies across
//! sub-block boundaries, so the FIFOs sit unused.

use super::{bias_addr, conv_weight_addr, Engine};
use crate::accel::RunError;
use crate::config::AcceleratorConfig;
use shidiannao_cnn::{ConnectionTable, Layer, LayerBody};
use shidiannao_fixed::Fx;

/// How many output maps a `Px × Py` mesh can host side by side for an
/// `ow × oh` output map (0 when the map does not fit at all).
pub(crate) fn pack_factor(pe: (usize, usize), out: (usize, usize)) -> usize {
    if out.0 > pe.0 || out.1 > pe.1 {
        0
    } else {
        (pe.0 / out.0) * (pe.1 / out.1)
    }
}

/// `true` when the packed path applies: packing is enabled, at least two
/// maps fit, and there is more than one output map to pack. Depends only
/// on the configuration and the layer, so schedule construction can ask
/// the same question without an engine in hand.
pub(crate) fn applies_cfg(cfg: &AcceleratorConfig, layer: &Layer) -> bool {
    cfg.multi_map_packing
        && layer.out_maps() > 1
        && pack_factor((cfg.pe_cols, cfg.pe_rows), layer.out_dims()) >= 2
}

/// [`applies_cfg`] for an engine in hand.
pub(crate) fn applies(eng: &Engine<'_>, layer: &Layer) -> bool {
    applies_cfg(eng.cfg, layer)
}

/// Executes a convolutional layer with multi-map packing.
///
/// Sub-block `s` of a group occupies PEs
/// `[sx·ow .. sx·ow+ow) × [sy·oh .. sy·oh+oh)` and owns output map
/// `group_start + s`. Each cycle sweeps one kernel position for one input
/// map of the group's *union* of connected inputs; sub-blocks whose map
/// is not connected to that input idle.
pub(super) fn run_conv(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    let LayerBody::Conv {
        table,
        kernel,
        stride,
        activation,
        ..
    } = layer.body()
    else {
        unreachable!("packed executor fed a non-conv layer");
    };
    let (ow, oh) = layer.out_dims();
    let pack_x = eng.cfg.pe_cols / ow;
    let pack_y = eng.cfg.pe_rows / oh;
    let pack = pack_x * pack_y;

    let mut group_start = 0;
    while group_start < layer.out_maps() {
        let group_len = pack.min(layer.out_maps() - group_start);

        // Reset each sub-block with its map's bias (one SB broadcast per
        // packed map — already more control traffic than the baseline).
        for s in 0..group_len {
            let (bx, by) = (s % pack_x, s / pack_x);
            eng.sb.read_broadcast(eng.stats);
            let bias = eng.store.bias(eng.layer_index, group_start + s);
            let bias = eng.sb_value(bias_addr(group_start + s), bias)?;
            for py in 0..oh {
                for px in 0..ow {
                    eng.nfu
                        .pe_mut(bx * ow + px, by * oh + py)
                        .reset_accumulator(bias);
                }
            }
        }

        // The union of input maps any packed map reads, ascending (each
        // map's own connections stay in ascending order, preserving the
        // golden reference's accumulation order).
        let union = union_inputs(table, group_start, group_len);

        for &im in &union {
            for ky in 0..kernel.1 {
                for kx in 0..kernel.0 {
                    let mut busy = 0;
                    for s in 0..group_len {
                        let o = group_start + s;
                        let Some(j) = table.inputs_of(o).iter().position(|&i| i == im) else {
                            continue;
                        };
                        let (bx, by) = (s % pack_x, s / pack_x);
                        // Every sub-block gathers its own tile (no shared
                        // tile read is possible across sub-blocks: their
                        // input coordinates coincide but land in the same
                        // banks — the MUX-mesh cost is modeled as one
                        // access per sub-block) and streams its own
                        // kernel value.
                        let vals = eng.nb_tile(im, (kx, ky), (ow, oh), (stride.0, stride.1))?;
                        eng.sb.read_broadcast(eng.stats);
                        let k = eng
                            .store
                            .conv_weight(eng.layer_index, o, j, (kx, ky), *kernel);
                        let k = eng.sb_value(conv_weight_addr(o, j, (kx, ky)), k)?;
                        for py in 0..oh {
                            for px in 0..ow {
                                eng.nfu
                                    .pe_mut(bx * ow + px, by * oh + py)
                                    .mac(vals[py * ow + px], k);
                                eng.stats.pe_muls += 1;
                                eng.stats.pe_adds += 1;
                            }
                        }
                        busy += ow * oh;
                    }
                    eng.tick(busy);
                }
            }
        }

        // Epilogue: drain and flush each packed map (one write per map).
        for s in 0..group_len {
            let o = group_start + s;
            let (bx, by) = (s % pack_x, s / pack_x);
            let mut vals: Vec<Fx> = Vec::with_capacity(ow * oh);
            for py in 0..oh {
                for px in 0..ow {
                    vals.push(eng.nfu.pe(bx * ow + px, by * oh + py).accumulator());
                }
            }
            let _ = eng.alu.activate(&mut vals, *activation, eng.stats);
            eng.nbout.write_block(o, (0, 0), (ow, oh), &vals, eng.stats);
        }
        eng.tick_idle(group_len as u64);

        group_start += group_len;
    }
    Ok(())
}

fn union_inputs(table: &ConnectionTable, start: usize, len: usize) -> Vec<usize> {
    let mut union: Vec<usize> = (start..start + len)
        .flat_map(|o| table.inputs_of(o).iter().copied())
        .collect();
    union.sort_unstable();
    union.dedup();
    union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_factor_geometry() {
        assert_eq!(pack_factor((8, 8), (5, 5)), 1);
        assert_eq!(pack_factor((8, 8), (4, 4)), 4);
        assert_eq!(pack_factor((8, 8), (2, 3)), 8);
        assert_eq!(pack_factor((8, 8), (1, 1)), 64);
        assert_eq!(pack_factor((8, 8), (9, 2)), 0);
        assert_eq!(pack_factor((8, 8), (8, 8)), 1);
    }

    #[test]
    fn union_respects_order_and_dedup() {
        let t = ConnectionTable::from_lists(4, vec![vec![2, 0], vec![3, 2], vec![1]]);
        assert_eq!(union_inputs(&t, 0, 2), vec![0, 2, 3]);
        assert_eq!(union_inputs(&t, 0, 3), vec![0, 1, 2, 3]);
        assert_eq!(union_inputs(&t, 2, 1), vec![1]);
    }
}
