//! Value kernels: the arithmetic that actually produces neuron values,
//! factored behind one trait so every execution path — live decode,
//! analytic fast, schedule replay, and the batched value lanes — shares
//! a single reduction implementation.
//!
//! # Bit-identity contract
//!
//! The cycle-accurate executors fold one product per cycle into a PE's
//! [`Accum`] with a saturating add. The lane kernels instead reduce
//! whole rows as *wrapping* `i64` partial sums (chunked so the compiler
//! can autovectorize the i16 multiplies) and fold the total into the
//! accumulator with one saturating [`Accum::add_raw`]. The two are
//! bit-identical because intermediate saturation is unreachable: every
//! product of two 16-bit operands fits in 31 bits, and the NB/SB
//! capacities bound any accumulation chain far below 2^20 terms, so no
//! partial sum can approach the i64 edge. Integer addition is
//! associative and commutative when it cannot overflow, so the chunked
//! re-association changes nothing. Max folds are order-independent
//! outright, and average-pool sums use `(Σ bits) << FRAC_BITS`, which
//! equals `Σ (bits << FRAC_BITS)` exactly.
//!
//! [`ScalarKernel`] mirrors the per-cycle operation order literally and
//! exists as the reference the microbenches compare against.

use shidiannao_fixed::{Fx, FRAC_BITS};

/// Width of the inner lane chunks. Eight i16 products per step keeps the
/// partial-sum state in two SIMD registers on any 128-bit target while
/// still giving the autovectorizer a full block to work with.
const LANES: usize = 8;

/// The value-reduction kernel shared by all execution paths.
pub trait ValueKernel {
    /// Raw Q*.16 dot product of equal-length value/weight slices.
    fn dot_raw(&self, vals: &[Fx], wts: &[Fx]) -> i64;

    /// One kernel-offset step of a window MAC row: adds
    /// `row[i · stride] × k` into `lanes[i]` for every lane.
    fn shifted_mac(&self, row: &[Fx], stride: usize, k: Fx, lanes: &mut [i64]);

    /// One kernel-offset step of a max-pool row: folds `row[i · stride]`
    /// into `cmps[i]`.
    fn shifted_max(&self, row: &[Fx], stride: usize, cmps: &mut [Fx]);

    /// One kernel-offset step of a sum row (average pooling): adds the
    /// raw bits of `row[i · stride]` into `lanes[i]`. Callers shift the
    /// final total by [`FRAC_BITS`] (see [`sum_to_raw`]).
    fn shifted_sum(&self, row: &[Fx], stride: usize, lanes: &mut [i64]);
}

/// Aligns an accumulated raw-bits sum to the accumulator's Q*.16 format.
#[inline]
pub fn sum_to_raw(bits: i64) -> i64 {
    bits << FRAC_BITS
}

/// The production kernel: chunked `i64` lane accumulators over
/// contiguous slices, written so the unit-stride hot case
/// autovectorizes. No unsafe anywhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneKernel;

/// The reference kernel: literal per-element loops in the exact order
/// the cycle-accurate executors issue operations. Used by the
/// vectorized-vs-scalar microbenches and the kernel unit tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarKernel;

impl ValueKernel for LaneKernel {
    #[inline]
    fn dot_raw(&self, vals: &[Fx], wts: &[Fx]) -> i64 {
        debug_assert_eq!(vals.len(), wts.len(), "dot operand mismatch");
        let mut lanes = [0i64; LANES];
        let mut vc = vals.chunks_exact(LANES);
        let mut wc = wts.chunks_exact(LANES);
        for (v, w) in (&mut vc).zip(&mut wc) {
            for j in 0..LANES {
                lanes[j] += i64::from(v[j].to_bits()) * i64::from(w[j].to_bits());
            }
        }
        let mut sum: i64 = lanes.iter().sum();
        for (v, w) in vc.remainder().iter().zip(wc.remainder()) {
            sum += i64::from(v.to_bits()) * i64::from(w.to_bits());
        }
        sum
    }

    #[inline]
    fn shifted_mac(&self, row: &[Fx], stride: usize, k: Fx, lanes: &mut [i64]) {
        let kb = i64::from(k.to_bits());
        if stride == 1 {
            // Unit stride: neighbouring PEs read neighbouring neurons, so
            // the lane slice is contiguous and the chunks vectorize.
            let row = &row[..lanes.len()];
            let mut lc = lanes.chunks_exact_mut(LANES);
            let mut rc = row.chunks_exact(LANES);
            for (l, r) in (&mut lc).zip(&mut rc) {
                for j in 0..LANES {
                    l[j] += i64::from(r[j].to_bits()) * kb;
                }
            }
            for (l, r) in lc.into_remainder().iter_mut().zip(rc.remainder()) {
                *l += i64::from(r.to_bits()) * kb;
            }
        } else {
            for (i, l) in lanes.iter_mut().enumerate() {
                *l += i64::from(row[i * stride].to_bits()) * kb;
            }
        }
    }

    #[inline]
    fn shifted_max(&self, row: &[Fx], stride: usize, cmps: &mut [Fx]) {
        if stride == 1 {
            let row = &row[..cmps.len()];
            for (c, &v) in cmps.iter_mut().zip(row) {
                *c = (*c).max(v);
            }
        } else {
            for (i, c) in cmps.iter_mut().enumerate() {
                *c = (*c).max(row[i * stride]);
            }
        }
    }

    #[inline]
    fn shifted_sum(&self, row: &[Fx], stride: usize, lanes: &mut [i64]) {
        if stride == 1 {
            let row = &row[..lanes.len()];
            for (l, &v) in lanes.iter_mut().zip(row) {
                *l += i64::from(v.to_bits());
            }
        } else {
            for (i, l) in lanes.iter_mut().enumerate() {
                *l += i64::from(row[i * stride].to_bits());
            }
        }
    }
}

impl ValueKernel for ScalarKernel {
    fn dot_raw(&self, vals: &[Fx], wts: &[Fx]) -> i64 {
        debug_assert_eq!(vals.len(), wts.len(), "dot operand mismatch");
        let mut sum = 0i64;
        for (v, w) in vals.iter().zip(wts) {
            sum += i64::from(v.to_bits()) * i64::from(w.to_bits());
        }
        sum
    }

    fn shifted_mac(&self, row: &[Fx], stride: usize, k: Fx, lanes: &mut [i64]) {
        let kb = i64::from(k.to_bits());
        for (i, l) in lanes.iter_mut().enumerate() {
            *l += i64::from(row[i * stride].to_bits()) * kb;
        }
    }

    fn shifted_max(&self, row: &[Fx], stride: usize, cmps: &mut [Fx]) {
        for (i, c) in cmps.iter_mut().enumerate() {
            *c = (*c).max(row[i * stride]);
        }
    }

    fn shifted_sum(&self, row: &[Fx], stride: usize, lanes: &mut [i64]) {
        for (i, l) in lanes.iter_mut().enumerate() {
            *l += i64::from(row[i * stride].to_bits());
        }
    }
}

/// Dot product of a (possibly sparse) classifier weight row against the
/// mode (d)-flattened input: dense rows (index set exactly `0..len`)
/// take the contiguous chunked path, sparse rows gather.
#[inline]
pub fn classifier_dot_raw<K: ValueKernel>(
    kernel: &K,
    flat: &[Fx],
    row: &[(usize, Fx)],
    wrow: &[Fx],
) -> i64 {
    if row.len() == flat.len() {
        // Rows are sorted and distinct, so a full-length row's index set
        // is exactly 0..in_count — a contiguous dot over the flat input.
        kernel.dot_raw(flat, wrow)
    } else {
        let mut sum = 0i64;
        for (&(idx, _), &w) in row.iter().zip(wrow) {
            sum += i64::from(flat[idx].to_bits()) * i64::from(w.to_bits());
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_fixed::Accum;

    fn fx(i: i32) -> Fx {
        Fx::from_bits((i % 1000) as i16)
    }

    #[test]
    fn lane_dot_matches_scalar_and_sequential_mac() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 100] {
            let vals: Vec<Fx> = (0..n as i32).map(|i| fx(i * 37 - 300)).collect();
            let wts: Vec<Fx> = (0..n as i32).map(|i| fx(i * 91 + 11)).collect();
            let lane = LaneKernel.dot_raw(&vals, &wts);
            let scalar = ScalarKernel.dot_raw(&vals, &wts);
            assert_eq!(lane, scalar, "n={n}");
            let mut acc = Accum::new();
            for (&v, &w) in vals.iter().zip(&wts) {
                acc.mac(v, w);
            }
            let mut raw = Accum::new();
            raw.add_raw(lane);
            assert_eq!(acc, raw, "n={n}");
        }
    }

    #[test]
    fn shifted_primitives_match_scalar_for_all_strides() {
        let row: Vec<Fx> = (0..64).map(|i| fx(i * 53 - 700)).collect();
        for stride in [1usize, 2, 3] {
            for aw in [1usize, 5, 8, 16] {
                if (aw - 1) * stride >= row.len() {
                    continue;
                }
                let k = fx(321);
                let mut a = vec![0i64; aw];
                let mut b = vec![0i64; aw];
                LaneKernel.shifted_mac(&row, stride, k, &mut a);
                ScalarKernel.shifted_mac(&row, stride, k, &mut b);
                assert_eq!(a, b, "mac stride={stride} aw={aw}");
                let mut s1 = vec![0i64; aw];
                let mut s2 = vec![0i64; aw];
                LaneKernel.shifted_sum(&row, stride, &mut s1);
                ScalarKernel.shifted_sum(&row, stride, &mut s2);
                assert_eq!(s1, s2, "sum stride={stride} aw={aw}");
                let mut c1 = vec![Fx::MIN; aw];
                let mut c2 = vec![Fx::MIN; aw];
                LaneKernel.shifted_max(&row, stride, &mut c1);
                ScalarKernel.shifted_max(&row, stride, &mut c2);
                assert_eq!(c1, c2, "max stride={stride} aw={aw}");
            }
        }
    }

    #[test]
    fn classifier_dot_handles_sparse_and_dense_rows() {
        let flat: Vec<Fx> = (0..32).map(|i| fx(i * 77 - 1000)).collect();
        // Dense: indices 0..32.
        let dense_row: Vec<(usize, Fx)> = (0..32).map(|i| (i, Fx::ZERO)).collect();
        let wrow: Vec<Fx> = (0..32).map(|i| fx(i * 13 + 5)).collect();
        let dense = classifier_dot_raw(&LaneKernel, &flat, &dense_row, &wrow);
        assert_eq!(dense, LaneKernel.dot_raw(&flat, &wrow));
        // Sparse: every third index.
        let sparse_row: Vec<(usize, Fx)> = (0..10).map(|i| (i * 3, Fx::ZERO)).collect();
        let swrow: Vec<Fx> = (0..10).map(|i| fx(i * 29 - 60)).collect();
        let got = classifier_dot_raw(&LaneKernel, &flat, &sparse_row, &swrow);
        let mut want = Accum::new();
        for (&(idx, _), &w) in sparse_row.iter().zip(&swrow) {
            want.mac(flat[idx], w);
        }
        assert_eq!(want.raw(), got);
    }

    #[test]
    fn avg_sum_alignment_is_exact() {
        // One lane fed several kernel-offset steps must equal the
        // sequential add_fx chain: (Σ bits) << F == Σ (bits << F).
        let row: Vec<Fx> = (0..16).map(|i| fx(i * 211 - 1500)).collect();
        let mut lanes = [0i64; 1];
        for kx in 0..5 {
            LaneKernel.shifted_sum(&row[kx..], 1, &mut lanes);
        }
        let mut raw = Accum::new();
        raw.add_raw(sum_to_raw(lanes[0]));
        let mut acc = Accum::new();
        for &v in &row[..5] {
            acc.add_fx(v);
        }
        assert_eq!(acc, raw);
    }
}
