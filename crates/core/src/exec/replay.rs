//! The schedule-replay executor: runs a layer whose control stream was
//! precompiled at `prepare()` time.
//!
//! The live executors spend most of their time *re-deriving* the static
//! control sequence — HFSM transitions, NB read-mode selection, address
//! arithmetic, per-access fault filtering, per-cycle statistics. Replay
//! skips all of it: the layer's complete [`LayerStats`] delta is
//! absorbed from the schedule in one call, silent-fault decisions were
//! resolved ahead of time into an overlay (NB cells pre-patched in the
//! input stack, SB words patched at fetch below), and only the
//! arithmetic that actually produces neuron values runs — in exactly
//! the per-accumulator operation order of the instrumented path, on the
//! real PE mesh, so outputs are bit-identical by construction (the same
//! argument, op for op, that proves the analytic fast kernel in
//! `window.rs`).
//!
//! Layers the replay executor does not model — normalization layers and
//! multi-map-packed convolutions ([`crate::schedule::layer_replayable`])
//! — and layers whose fault overlay detects an uncorrectable error
//! (which must abort at the exact live access, with exact partial
//! statistics) fall back to live decode in `accel.rs`.

use super::window::blocks;
use super::{bias_addr, conv_weight_addr, fc_weight_addr, Engine};
use crate::accel::RunError;
use crate::hfsm::FirstState;
use crate::schedule::{patch_fx, LayerSchedule};
use crate::stats::LayerStats;
use core::mem;
use shidiannao_cnn::Activation;
use shidiannao_cnn::{ConnectionTable, FcWeights, Layer, LayerBody, PoolKind};
use shidiannao_fixed::Fx;

/// SB patches of the layer's fault overlay (empty on clean runs).
type SbPatches = [([u64; 3], u16)];

/// Replays one layer from its precompiled schedule. The caller has
/// already applied the overlay's NB patches to the input stack and
/// absorbed the overlay's fault-counter delta; bank-conflict folding
/// stays in the caller (shared with the live path).
pub(crate) fn run_layer(
    eng: &mut Engine<'_>,
    layer: &Layer,
    sched: &LayerSchedule,
    sb_patches: &SbPatches,
) -> Result<(), RunError> {
    debug_assert!(sched.replayable(), "non-replayable layer reached replay");
    match layer.body() {
        LayerBody::Conv {
            table,
            kernel,
            stride,
            activation,
            ..
        } => {
            eng.hfsm.enter(FirstState::Conv).expect("HFSM: conv entry");
            conv(eng, layer, table, *kernel, *stride, *activation, sb_patches);
        }
        LayerBody::Pool {
            window,
            stride,
            kind,
            activation,
            ..
        } => {
            eng.hfsm.enter(FirstState::Pool).expect("HFSM: pool entry");
            pool(eng, layer, *window, *stride, *kind, *activation);
        }
        LayerBody::Fc {
            weights,
            activation,
        } => {
            eng.hfsm
                .enter(FirstState::Classifier)
                .expect("HFSM: classifier entry");
            fc(eng, layer, weights, *activation, sb_patches);
        }
        LayerBody::Lrn(_) | LayerBody::Lcn { .. } => {
            unreachable!("non-replayable layer kind reached the replay executor")
        }
    }
    // The whole layer's statistics in one absorb (counter sums, FIFO
    // peak maxes — the recorded delta was captured before bank-conflict
    // folding, which the caller applies identically to both paths).
    eng.stats.absorb(&sched.stats);
    // Advance the mesh's monotone cumulative FIFO-peak trackers to the
    // recorded after-layer value, so any later *live*-decoded layer
    // folds the same cumulative peaks it would have seen live.
    let (h, v) = sched.fifo_peaks_after;
    eng.nfu.note_fifo_peaks(h as u32, v as u32);
    Ok(())
}

/// Convolution replay: the per-accumulator sequence is, per connected
/// input map, `bias; mac(v_00, k_00) … mac(v_KyKx, k_KyKx)` in `(ky,
/// kx)` row-major order — identical to the window sweep.
fn conv(
    eng: &mut Engine<'_>,
    layer: &Layer,
    table: &ConnectionTable,
    kernel: (usize, usize),
    stride: (usize, usize),
    activation: Activation,
    patches: &SbPatches,
) {
    let out_dims = layer.out_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);
    let (kx_max, ky_max) = kernel;
    let (sx, sy) = stride;
    let layer_index = eng.layer_index;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut weights = mem::take(&mut eng.scratch.values);
    // Metering discard: the epilogue helpers charge their statistics
    // here; the real counters arrive wholesale from the schedule.
    let mut meter = LayerStats::default();

    for o in 0..layer.out_maps() {
        let bias = patch_fx(patches, bias_addr(o), eng.store.bias(layer_index, o));
        for (origin, active) in blocks(out_dims, pe_dims) {
            let (aw, ah) = active;
            for py in 0..ah {
                for px in 0..aw {
                    eng.nfu.pe_mut(px, py).reset_accumulator(bias);
                }
            }
            for (j, &im) in table.inputs_of(o).iter().enumerate() {
                // Stage the kernel in sweep (ky, kx) order, patched.
                weights.clear();
                for ky in 0..ky_max {
                    for kx in 0..kx_max {
                        let w = eng.store.conv_weight(layer_index, o, j, (kx, ky), kernel);
                        weights.push(patch_fx(patches, conv_weight_addr(o, j, (kx, ky)), w));
                    }
                }
                let nbin = eng.nbin;
                let fm = &nbin.contents().expect("session loaded the input")[im];
                for py in 0..ah {
                    let base_y = (origin.1 + py) * sy;
                    for px in 0..aw {
                        let base_x = (origin.0 + px) * sx;
                        let acc = eng.nfu.acc_mut(px, py);
                        for ky in 0..ky_max {
                            let row = &fm.row(base_y + ky)[base_x..base_x + kx_max];
                            for (&v, &k) in row.iter().zip(&weights[ky * kx_max..]) {
                                acc.mac(v, k);
                            }
                        }
                    }
                }
            }
            eng.nfu.read_accumulators_into(active, &mut vals);
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(o, origin, active, &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
    eng.scratch.values = weights;
}

/// Pooling replay. Overlapping windows mirror the window sweep's `(ky,
/// kx)` order; non-overlapping windows mirror the mode (e) gather's
/// `(wy, wx)` order with the same edge clipping. Max pooling uses no
/// synapses, so the SB overlay never applies.
fn pool(
    eng: &mut Engine<'_>,
    layer: &Layer,
    window: (usize, usize),
    stride: (usize, usize),
    kind: PoolKind,
    activation: Activation,
) {
    let out_dims = layer.out_dims();
    let in_dims = layer.in_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);
    let overlapping = stride.0 < window.0 || stride.1 < window.1;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut meter = LayerStats::default();

    for m in 0..layer.out_maps() {
        for (origin, active) in blocks(out_dims, pe_dims) {
            let (aw, ah) = active;
            for py in 0..ah {
                for px in 0..aw {
                    let mut pe = eng.nfu.pe_mut(px, py);
                    match kind {
                        PoolKind::Max => pe.reset_comparator(),
                        PoolKind::Avg => pe.reset_accumulator(Fx::ZERO),
                    }
                }
            }

            let nbin = eng.nbin;
            let fm = &nbin.contents().expect("session loaded the input")[m];
            for py in 0..ah {
                let y0 = (origin.1 + py) * stride.1;
                for px in 0..aw {
                    let x0 = (origin.0 + px) * stride.0;
                    // Overlapping windows always fit (the sweep engine
                    // reads them unclipped); non-overlapping windows clip
                    // at the input edge exactly like the gather loop.
                    let (xe, ye) = if overlapping {
                        (x0 + window.0, y0 + window.1)
                    } else {
                        (
                            (x0 + window.0).min(in_dims.0),
                            (y0 + window.1).min(in_dims.1),
                        )
                    };
                    match kind {
                        PoolKind::Max => {
                            let cmp = eng.nfu.cmp_mut(px, py);
                            for y in y0..ye {
                                for &v in &fm.row(y)[x0..xe] {
                                    *cmp = (*cmp).max(v);
                                }
                            }
                        }
                        PoolKind::Avg => {
                            let acc = eng.nfu.acc_mut(px, py);
                            for y in y0..ye {
                                for &v in &fm.row(y)[x0..xe] {
                                    acc.add_fx(v);
                                }
                            }
                        }
                    }
                }
            }

            vals.clear();
            for py in 0..ah {
                for px in 0..aw {
                    let v = match kind {
                        PoolKind::Max => eng.nfu.pe(px, py).comparator(),
                        PoolKind::Avg => {
                            let x0 = (origin.0 + px) * stride.0;
                            let y0 = (origin.1 + py) * stride.1;
                            let w = (x0 + window.0).min(in_dims.0) - x0;
                            let h = (y0 + window.1).min(in_dims.1) - y0;
                            eng.nfu.pe(px, py).accumulator_mean(w * h)
                        }
                    };
                    vals.push(v);
                }
            }
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(m, origin, active, &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
}

/// Classifier replay: each PE's MAC stream is its weight row in
/// ascending index order — exactly the order the union-loop cursors
/// walk — over the mode (d)-flattened (and NB-patched) input.
fn fc(
    eng: &mut Engine<'_>,
    layer: &Layer,
    weights: &FcWeights,
    activation: Activation,
    patches: &SbPatches,
) {
    let pe_count = eng.cfg.pe_count();
    let px = eng.cfg.pe_cols;
    let out_count = layer.out_maps();
    let layer_index = eng.layer_index;
    let mut flat = mem::take(&mut eng.scratch.values);
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut meter = LayerStats::default();

    // Flatten once per layer, in mode (d)'s flat addressing order
    // (map-major, row-major). NB patches were applied to the stack.
    flat.clear();
    for fm in eng
        .nbin
        .contents()
        .expect("session loaded the input")
        .iter()
    {
        flat.extend_from_slice(fm.as_slice());
    }

    for group_start in (0..out_count).step_by(pe_count) {
        let group_len = pe_count.min(out_count - group_start);
        for i in 0..group_len {
            let o = group_start + i;
            let bias = patch_fx(patches, bias_addr(o), eng.store.bias(layer_index, o));
            eng.nfu.pe_mut(i % px, i / px).reset_accumulator(bias);
        }

        let store = eng.store;
        for i in 0..group_len {
            let o = group_start + i;
            let row = weights.row(o);
            let wrow = store.fc_row(layer_index, o, row.len());
            let acc = eng.nfu.acc_mut(i % px, i / px);
            if patches.is_empty() {
                for (&(idx, _), &w) in row.iter().zip(wrow) {
                    acc.mac(flat[idx], w);
                }
            } else {
                // The live path filters each weight at its (row, slot)
                // SB-image coordinate — the slot is the cursor position,
                // i.e. the entry's index within the row.
                for (slot, (&(idx, _), &w)) in row.iter().zip(wrow).enumerate() {
                    acc.mac(flat[idx], patch_fx(patches, fc_weight_addr(o, slot), w));
                }
            }
        }

        vals.clear();
        for i in 0..group_len {
            vals.push(eng.nfu.pe(i % px, i / px).accumulator());
        }
        let _ = eng.alu.activate(&mut vals, activation, &mut meter);
        eng.nbout.write_scalar_group(group_start, &vals, &mut meter);
    }
    eng.scratch.values = flat;
    eng.scratch.vals = vals;
}
