//! The schedule-replay executor: runs a layer whose control stream was
//! precompiled at `prepare()` time.
//!
//! The live executors spend most of their time *re-deriving* the static
//! control sequence — HFSM transitions, NB read-mode selection, address
//! arithmetic, per-access fault filtering, per-cycle statistics. Replay
//! skips all of it: the layer's complete [`LayerStats`] delta is
//! absorbed from the schedule in one call, silent-fault decisions were
//! resolved ahead of time into an overlay (NB cells pre-patched in the
//! input stack, SB words patched at fetch below), and only the
//! arithmetic that actually produces neuron values runs — in exactly
//! the per-accumulator operation order of the instrumented path, on the
//! real PE mesh, so outputs are bit-identical by construction (the same
//! argument, op for op, that proves the analytic fast kernel in
//! `window.rs`).
//!
//! Layers the replay executor does not model — normalization layers and
//! multi-map-packed convolutions ([`crate::schedule::layer_replayable`])
//! — and layers whose fault overlay detects an uncorrectable error
//! (which must abort at the exact live access, with exact partial
//! statistics) fall back to live decode in `accel.rs`.

use super::values::{classifier_dot_raw, sum_to_raw, LaneKernel, ValueKernel};
use super::window::blocks;
use super::{bias_addr, conv_weight_addr, fc_weight_addr, Engine};
use crate::accel::RunError;
use crate::hfsm::FirstState;
use crate::schedule::{patch_fx, LayerSchedule};
use crate::stats::LayerStats;
use core::mem;
use shidiannao_cnn::Activation;
use shidiannao_cnn::{ConnectionTable, FcWeights, Layer, LayerBody, PoolKind};
use shidiannao_fixed::{Accum, Fx};

/// SB patches of the layer's fault overlay (empty on clean runs).
type SbPatches = [([u64; 3], u16)];

/// Replays one layer from its precompiled schedule. The caller has
/// already applied the overlay's NB patches to the input stack and
/// absorbed the overlay's fault-counter delta; bank-conflict folding
/// stays in the caller (shared with the live path).
pub(crate) fn run_layer(
    eng: &mut Engine<'_>,
    layer: &Layer,
    sched: &LayerSchedule,
    sb_patches: &SbPatches,
) -> Result<(), RunError> {
    debug_assert!(sched.replayable(), "non-replayable layer reached replay");
    layer_values(eng, layer, sb_patches, sched.row_lanes());
    // The whole layer's statistics in one absorb (counter sums, FIFO
    // peak maxes — the recorded delta was captured before bank-conflict
    // folding, which the caller applies identically to both paths).
    eng.stats.absorb(&sched.stats);
    // Advance the mesh's monotone cumulative FIFO-peak trackers to the
    // recorded after-layer value, so any later *live*-decoded layer
    // folds the same cumulative peaks it would have seen live.
    let (h, v) = sched.fifo_peaks_after;
    eng.nfu.note_fifo_peaks(h as u32, v as u32);
    Ok(())
}

/// Runs only the value-producing arithmetic of a replayable layer — the
/// replay bodies without the statistics absorb. The batched execution
/// path calls this directly for lanes 1..N of a batch: control and
/// statistics were already charged once by the canonical lane, and the
/// bodies below never touch `eng.stats` (their epilogue metering goes to
/// a local discard), so a value lane is exactly this call.
///
/// `row_lanes` selects the optimizer's whole-output-row conv/pool bodies
/// ([`crate::opt`]): one lane-kernel sweep per output row instead of one
/// per `Px`-wide block slice, bit-identical by the same
/// exact-integer-reassociation argument as the block bodies.
pub(crate) fn layer_values(
    eng: &mut Engine<'_>,
    layer: &Layer,
    sb_patches: &SbPatches,
    row_lanes: bool,
) {
    match layer.body() {
        LayerBody::Conv {
            table,
            kernel,
            stride,
            activation,
            ..
        } => {
            eng.hfsm.enter(FirstState::Conv).expect("HFSM: conv entry");
            if row_lanes {
                conv_rows(eng, layer, table, *kernel, *stride, *activation, sb_patches);
            } else {
                conv(eng, layer, table, *kernel, *stride, *activation, sb_patches);
            }
        }
        LayerBody::Pool {
            window,
            stride,
            kind,
            activation,
            ..
        } => {
            eng.hfsm.enter(FirstState::Pool).expect("HFSM: pool entry");
            if row_lanes {
                pool_rows(eng, layer, *window, *stride, *kind, *activation);
            } else {
                pool(eng, layer, *window, *stride, *kind, *activation);
            }
        }
        LayerBody::Fc {
            weights,
            activation,
        } => {
            eng.hfsm
                .enter(FirstState::Classifier)
                .expect("HFSM: classifier entry");
            fc(eng, layer, weights, *activation, sb_patches);
        }
        LayerBody::Lrn(_) | LayerBody::Lcn { .. } => {
            unreachable!("non-replayable layer kind reached the replay executor")
        }
    }
}

/// Convolution replay: the per-accumulator sequence is, per connected
/// input map, `bias; mac(v_00, k_00) … mac(v_KyKx, k_KyKx)` in `(ky,
/// kx)` row-major order — identical to the window sweep.
fn conv(
    eng: &mut Engine<'_>,
    layer: &Layer,
    table: &ConnectionTable,
    kernel: (usize, usize),
    stride: (usize, usize),
    activation: Activation,
    patches: &SbPatches,
) {
    let out_dims = layer.out_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);
    let (kx_max, ky_max) = kernel;
    let ksz = kx_max * ky_max;
    let (sx, sy) = stride;
    let layer_index = eng.layer_index;
    let store = eng.store;
    let stack = eng.nbin.contents().expect("session loaded the input");
    let kern = LaneKernel;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut weights = mem::take(&mut eng.scratch.values);
    let mut lanes = mem::take(&mut eng.scratch.sums);
    // Metering discard: the epilogue helpers charge their statistics
    // here; the real counters arrive wholesale from the schedule.
    let mut meter = LayerStats::default();

    for o in 0..layer.out_maps() {
        let bias = patch_fx(patches, bias_addr(o), store.bias(layer_index, o));
        let inputs = table.inputs_of(o);
        // Clean runs borrow each kernel straight out of the SB image —
        // `conv_kernel` slices are already in sweep (ky, kx) order. A
        // fault overlay stages all of the map's kernels once, patched.
        if !patches.is_empty() {
            weights.clear();
            for j in 0..inputs.len() {
                for ky in 0..ky_max {
                    for kx in 0..kx_max {
                        let w = store.conv_weight(layer_index, o, j, (kx, ky), kernel);
                        weights.push(patch_fx(patches, conv_weight_addr(o, j, (kx, ky)), w));
                    }
                }
            }
        }
        for (origin, active) in blocks(out_dims, pe_dims) {
            let (aw, ah) = active;
            for py in 0..ah {
                for px in 0..aw {
                    eng.nfu.pe_mut(px, py).reset_accumulator(bias);
                }
            }
            // Chunked-lane reduction per PE row: lane `px` sums every
            // connected map's contribution at stride `sx`, then lands on
            // the accumulator in one raw add — bit-identical to the
            // per-PE `mac` chain (see `values.rs`; the accumulator is a
            // plain i64 whose chains cannot overflow, so merging the
            // per-map partial sums re-associates exact integer adds).
            let base_x0 = origin.0 * sx;
            for py in 0..ah {
                let base_y = (origin.1 + py) * sy;
                lanes.clear();
                lanes.resize(aw, 0);
                for (j, &im) in inputs.iter().enumerate() {
                    let wts = if patches.is_empty() {
                        store.conv_kernel(layer_index, o, j, kernel)
                    } else {
                        &weights[j * ksz..(j + 1) * ksz]
                    };
                    let fm = &stack[im];
                    for ky in 0..ky_max {
                        let row = &fm.row(base_y + ky)[base_x0..];
                        for (kx, &k) in wts[ky * kx_max..(ky + 1) * kx_max].iter().enumerate() {
                            kern.shifted_mac(&row[kx..], sx, k, &mut lanes);
                        }
                    }
                }
                for (acc, &l) in eng.nfu.acc_row_mut(py, aw).iter_mut().zip(&lanes) {
                    acc.add_raw(l);
                }
            }
            eng.nfu.read_accumulators_into(active, &mut vals);
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(o, origin, active, &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
    eng.scratch.values = weights;
    eng.scratch.sums = lanes;
}

/// The optimizer's whole-output-row convolution body: one lane sweep per
/// output row (`ow` lanes) instead of one per `Px`-wide block slice.
/// Bit-identical to [`conv`]: each output pixel's accumulator still
/// receives `bias` plus one raw add of the exact i64 sum of all its
/// `(j, ky, kx)` products in the same order — only the lane-batching
/// width changes, and integer adds re-associate exactly.
fn conv_rows(
    eng: &mut Engine<'_>,
    layer: &Layer,
    table: &ConnectionTable,
    kernel: (usize, usize),
    stride: (usize, usize),
    activation: Activation,
    patches: &SbPatches,
) {
    let (ow, oh) = layer.out_dims();
    let (kx_max, ky_max) = kernel;
    let ksz = kx_max * ky_max;
    let (sx, sy) = stride;
    let layer_index = eng.layer_index;
    let store = eng.store;
    let stack = eng.nbin.contents().expect("session loaded the input");
    let kern = LaneKernel;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut weights = mem::take(&mut eng.scratch.values);
    let mut lanes = mem::take(&mut eng.scratch.sums);
    let mut meter = LayerStats::default();

    for o in 0..layer.out_maps() {
        let bias = patch_fx(patches, bias_addr(o), store.bias(layer_index, o));
        let inputs = table.inputs_of(o);
        if !patches.is_empty() {
            weights.clear();
            for j in 0..inputs.len() {
                for ky in 0..ky_max {
                    for kx in 0..kx_max {
                        let w = store.conv_weight(layer_index, o, j, (kx, ky), kernel);
                        weights.push(patch_fx(patches, conv_weight_addr(o, j, (kx, ky)), w));
                    }
                }
            }
        }
        for y in 0..oh {
            lanes.clear();
            lanes.resize(ow, 0);
            for (j, &im) in inputs.iter().enumerate() {
                let wts = if patches.is_empty() {
                    store.conv_kernel(layer_index, o, j, kernel)
                } else {
                    &weights[j * ksz..(j + 1) * ksz]
                };
                let fm = &stack[im];
                for ky in 0..ky_max {
                    let row = fm.row(y * sy + ky);
                    for (kx, &k) in wts[ky * kx_max..(ky + 1) * kx_max].iter().enumerate() {
                        kern.shifted_mac(&row[kx..], sx, k, &mut lanes);
                    }
                }
            }
            vals.clear();
            for &l in &lanes {
                let mut a = Accum::from_fx(bias);
                a.add_raw(l);
                vals.push(a.to_fx());
            }
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(o, (0, y), (ow, 1), &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
    eng.scratch.values = weights;
    eng.scratch.sums = lanes;
}

/// Pooling replay. Overlapping windows mirror the window sweep's `(ky,
/// kx)` order; non-overlapping windows mirror the mode (e) gather's
/// `(wy, wx)` order with the same edge clipping. Max pooling uses no
/// synapses, so the SB overlay never applies.
fn pool(
    eng: &mut Engine<'_>,
    layer: &Layer,
    window: (usize, usize),
    stride: (usize, usize),
    kind: PoolKind,
    activation: Activation,
) {
    let out_dims = layer.out_dims();
    let in_dims = layer.in_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);
    let overlapping = stride.0 < window.0 || stride.1 < window.1;
    let kern = LaneKernel;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut lanes = mem::take(&mut eng.scratch.sums);
    let mut meter = LayerStats::default();

    for m in 0..layer.out_maps() {
        for (origin, active) in blocks(out_dims, pe_dims) {
            let (aw, ah) = active;
            for py in 0..ah {
                for px in 0..aw {
                    let mut pe = eng.nfu.pe_mut(px, py);
                    match kind {
                        PoolKind::Max => pe.reset_comparator(),
                        PoolKind::Avg => pe.reset_accumulator(Fx::ZERO),
                    }
                }
            }

            let nbin = eng.nbin;
            let fm = &nbin.contents().expect("session loaded the input")[m];
            let base_x0 = origin.0 * stride.0;
            for py in 0..ah {
                let y0 = (origin.1 + py) * stride.1;
                // Overlapping windows always fit (the sweep engine reads
                // them unclipped); non-overlapping windows clip at the
                // input edge exactly like the gather loop. The y-extent
                // is shared by the whole PE row; the x-extent is uniform
                // iff the rightmost lane's window fits, which lets the
                // row run on the chunked lane kernel (max and integer
                // sums are order-independent, so the reduction is
                // bit-identical to the per-PE gather).
                let ye = if overlapping {
                    y0 + window.1
                } else {
                    (y0 + window.1).min(in_dims.1)
                };
                let right_x0 = (origin.0 + aw - 1) * stride.0;
                let row_unclipped = overlapping || right_x0 + window.0 <= in_dims.0;
                if row_unclipped {
                    match kind {
                        PoolKind::Max => {
                            let cmps = eng.nfu.cmp_row_mut(py, aw);
                            for y in y0..ye {
                                let row = &fm.row(y)[base_x0..];
                                for wx in 0..window.0 {
                                    kern.shifted_max(&row[wx..], stride.0, cmps);
                                }
                            }
                        }
                        PoolKind::Avg => {
                            lanes.clear();
                            lanes.resize(aw, 0);
                            for y in y0..ye {
                                let row = &fm.row(y)[base_x0..];
                                for wx in 0..window.0 {
                                    kern.shifted_sum(&row[wx..], stride.0, &mut lanes);
                                }
                            }
                            for (acc, &l) in eng.nfu.acc_row_mut(py, aw).iter_mut().zip(&lanes) {
                                acc.add_raw(sum_to_raw(l));
                            }
                        }
                    }
                    continue;
                }
                for px in 0..aw {
                    let x0 = (origin.0 + px) * stride.0;
                    let xe = (x0 + window.0).min(in_dims.0);
                    match kind {
                        PoolKind::Max => {
                            let cmp = eng.nfu.cmp_mut(px, py);
                            for y in y0..ye {
                                for &v in &fm.row(y)[x0..xe] {
                                    *cmp = (*cmp).max(v);
                                }
                            }
                        }
                        PoolKind::Avg => {
                            let acc = eng.nfu.acc_mut(px, py);
                            for y in y0..ye {
                                for &v in &fm.row(y)[x0..xe] {
                                    acc.add_fx(v);
                                }
                            }
                        }
                    }
                }
            }

            vals.clear();
            for py in 0..ah {
                for px in 0..aw {
                    let v = match kind {
                        PoolKind::Max => eng.nfu.pe(px, py).comparator(),
                        PoolKind::Avg => {
                            let x0 = (origin.0 + px) * stride.0;
                            let y0 = (origin.1 + py) * stride.1;
                            let w = (x0 + window.0).min(in_dims.0) - x0;
                            let h = (y0 + window.1).min(in_dims.1) - y0;
                            eng.nfu.pe(px, py).accumulator_mean(w * h)
                        }
                    };
                    vals.push(v);
                }
            }
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(m, origin, active, &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
    eng.scratch.sums = lanes;
}

/// The optimizer's whole-output-row pooling body: the unclipped lane
/// prefix of each output row runs on the chunked lane kernel; lanes
/// whose window clips at the right input edge reduce per pixel exactly
/// like the gather loop. Max and exact integer sums are
/// order-independent, so results are bit-identical to [`pool`].
fn pool_rows(
    eng: &mut Engine<'_>,
    layer: &Layer,
    window: (usize, usize),
    stride: (usize, usize),
    kind: PoolKind,
    activation: Activation,
) {
    let (ow, oh) = layer.out_dims();
    let in_dims = layer.in_dims();
    let overlapping = stride.0 < window.0 || stride.1 < window.1;
    // Lanes 0..n_unclip have full windows in x (monotone in the lane
    // index); overlapping windows always fit.
    let n_unclip = if overlapping {
        ow
    } else if in_dims.0 >= window.0 {
        ow.min((in_dims.0 - window.0) / stride.0 + 1)
    } else {
        0
    };
    let kern = LaneKernel;
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut lanes = mem::take(&mut eng.scratch.sums);
    let mut cmps = mem::take(&mut eng.scratch.aux);
    let mut meter = LayerStats::default();

    for m in 0..layer.out_maps() {
        let fm = &eng.nbin.contents().expect("session loaded the input")[m];
        for y in 0..oh {
            let y0 = y * stride.1;
            let ye = if overlapping {
                y0 + window.1
            } else {
                (y0 + window.1).min(in_dims.1)
            };
            vals.clear();
            match kind {
                PoolKind::Max => {
                    cmps.clear();
                    cmps.resize(ow, Fx::MIN);
                    if n_unclip > 0 {
                        for yy in y0..ye {
                            let row = fm.row(yy);
                            for wx in 0..window.0 {
                                kern.shifted_max(&row[wx..], stride.0, &mut cmps[..n_unclip]);
                            }
                        }
                    }
                    for (px, c) in cmps.iter_mut().enumerate().skip(n_unclip) {
                        let x0 = px * stride.0;
                        let xe = (x0 + window.0).min(in_dims.0);
                        for yy in y0..ye {
                            for &v in &fm.row(yy)[x0..xe] {
                                *c = (*c).max(v);
                            }
                        }
                    }
                    vals.extend_from_slice(&cmps);
                }
                PoolKind::Avg => {
                    lanes.clear();
                    lanes.resize(n_unclip, 0);
                    if n_unclip > 0 {
                        for yy in y0..ye {
                            let row = fm.row(yy);
                            for wx in 0..window.0 {
                                kern.shifted_sum(&row[wx..], stride.0, &mut lanes);
                            }
                        }
                    }
                    for px in 0..ow {
                        let x0 = px * stride.0;
                        let xe = (x0 + window.0).min(in_dims.0);
                        let mut a = Accum::from_fx(Fx::ZERO);
                        // Lanes cover the first `n_unclip` windows; the
                        // clipped tail recomputes directly.
                        if let Some(&sum) = lanes.get(px) {
                            a.add_raw(sum_to_raw(sum));
                        } else {
                            for yy in y0..ye {
                                for &v in &fm.row(yy)[x0..xe] {
                                    a.add_fx(v);
                                }
                            }
                        }
                        vals.push(a.mean((xe - x0) * (ye - y0)));
                    }
                }
            }
            let _ = eng.alu.activate(&mut vals, activation, &mut meter);
            eng.nbout.write_block(m, (0, y), (ow, 1), &vals, &mut meter);
        }
    }
    eng.scratch.vals = vals;
    eng.scratch.sums = lanes;
    eng.scratch.aux = cmps;
}

/// Classifier replay: each PE's MAC stream is its weight row in
/// ascending index order — exactly the order the union-loop cursors
/// walk — over the mode (d)-flattened (and NB-patched) input.
fn fc(
    eng: &mut Engine<'_>,
    layer: &Layer,
    weights: &FcWeights,
    activation: Activation,
    patches: &SbPatches,
) {
    let pe_count = eng.cfg.pe_count();
    let px = eng.cfg.pe_cols;
    let out_count = layer.out_maps();
    let layer_index = eng.layer_index;
    let mut flat = mem::take(&mut eng.scratch.values);
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut meter = LayerStats::default();

    // Flatten once per layer, in mode (d)'s flat addressing order
    // (map-major, row-major). NB patches were applied to the stack.
    flat.clear();
    for fm in eng
        .nbin
        .contents()
        .expect("session loaded the input")
        .iter()
    {
        flat.extend_from_slice(fm.as_slice());
    }

    for group_start in (0..out_count).step_by(pe_count) {
        let group_len = pe_count.min(out_count - group_start);
        for i in 0..group_len {
            let o = group_start + i;
            let bias = patch_fx(patches, bias_addr(o), eng.store.bias(layer_index, o));
            eng.nfu.pe_mut(i % px, i / px).reset_accumulator(bias);
        }

        let store = eng.store;
        for i in 0..group_len {
            let o = group_start + i;
            let row = weights.row(o);
            let wrow = store.fc_row(layer_index, o, row.len());
            if patches.is_empty() {
                // Clean run: one chunked-lane dot product per PE
                // (contiguous when the row is dense), landed in a single
                // raw add — bit-identical to the `mac` chain.
                let dot = classifier_dot_raw(&LaneKernel, &flat, row, wrow);
                eng.nfu.acc_mut(i % px, i / px).add_raw(dot);
            } else {
                // The live path filters each weight at its (row, slot)
                // SB-image coordinate — the slot is the cursor position,
                // i.e. the entry's index within the row.
                let acc = eng.nfu.acc_mut(i % px, i / px);
                for (slot, (&(idx, _), &w)) in row.iter().zip(wrow).enumerate() {
                    acc.mac(flat[idx], patch_fx(patches, fc_weight_addr(o, slot), w));
                }
            }
        }

        vals.clear();
        for i in 0..group_len {
            vals.push(eng.nfu.pe(i % px, i / px).accumulator());
        }
        let _ = eng.alu.activate(&mut vals, activation, &mut meter);
        eng.nbout.write_scalar_group(group_start, &vals, &mut meter);
    }
    eng.scratch.values = flat;
    eng.scratch.vals = vals;
}
