//! Cycle-level layer executors.
//!
//! Each executor drives the NFU mesh cycle by cycle, issuing NB controller
//! reads in the modes §7.1 assigns to its layer type, propagating data
//! between PEs through the FIFOs, and producing output neurons that are
//! **bit-identical** to the golden reference in `shidiannao-cnn`.

mod conv;
mod fc;
mod norm;
mod packed;
mod pool;
mod window;

pub(crate) use window::WindowOp;

use crate::alu::Alu;
use crate::buffer::{NeuronBuffer, SynapseBuffer};
use crate::config::AcceleratorConfig;
use crate::hfsm::{FirstState, Hfsm};
use crate::nfu::Nfu;
use crate::sb::SynapseStore;
use crate::stats::LayerStats;
use shidiannao_cnn::{Layer, LayerBody};

/// Mutable execution context threaded through the layer executors.
pub(crate) struct Engine<'a> {
    pub cfg: &'a AcceleratorConfig,
    pub nbin: &'a NeuronBuffer,
    pub nbout: &'a mut NeuronBuffer,
    pub sb: &'a SynapseBuffer,
    pub store: &'a SynapseStore,
    pub layer_index: usize,
    pub nfu: &'a mut Nfu,
    pub alu: &'a Alu,
    pub hfsm: &'a mut Hfsm,
    pub stats: &'a mut LayerStats,
}

impl Engine<'_> {
    /// Executes one layer; results are collected in `nbout`.
    ///
    /// # Panics
    ///
    /// Panics on HFSM scheduling violations (internal invariants).
    pub(crate) fn run_layer(&mut self, layer: &Layer) {
        match layer.body() {
            LayerBody::Conv { .. } => {
                self.hfsm.enter(FirstState::Conv).expect("HFSM: conv entry");
                if packed::applies(self, layer) {
                    packed::run_conv(self, layer);
                } else {
                    conv::run(self, layer);
                }
            }
            LayerBody::Pool { .. } => {
                self.hfsm.enter(FirstState::Pool).expect("HFSM: pool entry");
                pool::run(self, layer);
            }
            LayerBody::Fc { .. } => {
                self.hfsm
                    .enter(FirstState::Classifier)
                    .expect("HFSM: classifier entry");
                fc::run(self, layer);
            }
            LayerBody::Lrn(_) | LayerBody::Lcn { .. } => {
                self.hfsm.enter(FirstState::Norm).expect("HFSM: norm entry");
                norm::run(self, layer);
            }
        }
    }

    /// Charges one compute cycle with `busy` active PEs.
    #[inline]
    pub(crate) fn tick(&mut self, busy: usize) {
        self.stats.cycles += 1;
        self.stats.pe_busy_slots += busy as u64;
        self.stats.pe_total_slots += self.cfg.pe_count() as u64;
    }

    /// Charges `n` pure-latency cycles (ALU drain, write-back) with no PE
    /// activity.
    #[inline]
    pub(crate) fn tick_idle(&mut self, n: u64) {
        self.stats.cycles += n;
        self.stats.pe_total_slots += n * self.cfg.pe_count() as u64;
    }
}
