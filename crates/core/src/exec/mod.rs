//! Cycle-level layer executors.
//!
//! Each executor drives the NFU mesh cycle by cycle, issuing NB controller
//! reads in the modes §7.1 assigns to its layer type, propagating data
//! between PEs through the FIFOs, and producing output neurons that are
//! **bit-identical** to the golden reference in `shidiannao-cnn`.
//!
//! All SRAM reads route through the `Engine`'s fault-filtering wrappers:
//! with an inactive [`FaultState`] they are pass-throughs, and with an
//! active one every word is filtered by address through the seeded fault
//! plan, so faulted executions are replayable and independent of the read
//! mode that happened to deliver a word.

mod conv;
mod fc;
mod norm;
mod packed;
mod pool;
mod window;

pub(crate) use window::WindowOp;

use crate::accel::RunError;
use crate::alu::Alu;
use crate::buffer::{NeuronBuffer, SynapseBuffer};
use crate::config::AcceleratorConfig;
use crate::hfsm::{FirstState, Hfsm};
use crate::nfu::Nfu;
use crate::sb::SynapseStore;
use crate::stats::LayerStats;
use shidiannao_cnn::{Layer, LayerBody};
use shidiannao_faults::{FaultSite, FaultState};
use shidiannao_fixed::Fx;

/// Mutable execution context threaded through the layer executors.
pub(crate) struct Engine<'a> {
    pub cfg: &'a AcceleratorConfig,
    pub nbin: &'a NeuronBuffer,
    pub nbout: &'a mut NeuronBuffer,
    pub sb: &'a SynapseBuffer,
    pub store: &'a SynapseStore,
    pub layer_index: usize,
    pub nfu: &'a mut Nfu,
    pub alu: &'a Alu,
    pub hfsm: &'a mut Hfsm,
    pub stats: &'a mut LayerStats,
    pub faults: &'a mut FaultState,
}

impl Engine<'_> {
    /// Executes one layer; results are collected in `nbout`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::FaultDetected`] when SRAM protection detects an
    /// uncorrectable error, or [`RunError::EmptyBuffer`] on a read from an
    /// unloaded buffer.
    ///
    /// # Panics
    ///
    /// Panics on HFSM scheduling violations (internal invariants).
    pub(crate) fn run_layer(&mut self, layer: &Layer) -> Result<(), RunError> {
        match layer.body() {
            LayerBody::Conv { .. } => {
                self.hfsm.enter(FirstState::Conv).expect("HFSM: conv entry");
                if packed::applies(self, layer) {
                    packed::run_conv(self, layer)
                } else {
                    conv::run(self, layer)
                }
            }
            LayerBody::Pool { .. } => {
                self.hfsm.enter(FirstState::Pool).expect("HFSM: pool entry");
                pool::run(self, layer)
            }
            LayerBody::Fc { .. } => {
                self.hfsm
                    .enter(FirstState::Classifier)
                    .expect("HFSM: classifier entry");
                fc::run(self, layer)
            }
            LayerBody::Lrn(_) | LayerBody::Lcn { .. } => {
                self.hfsm.enter(FirstState::Norm).expect("HFSM: norm entry");
                norm::run(self, layer)
            }
        }
    }

    /// Charges one compute cycle with `busy` active PEs.
    #[inline]
    pub(crate) fn tick(&mut self, busy: usize) {
        self.stats.cycles += 1;
        self.stats.pe_busy_slots += busy as u64;
        self.stats.pe_total_slots += self.cfg.pe_count() as u64;
    }

    /// Charges `n` pure-latency cycles (ALU drain, write-back) with no PE
    /// activity.
    #[inline]
    pub(crate) fn tick_idle(&mut self, n: u64) {
        self.stats.cycles += n;
        self.stats.pe_total_slots += n * self.cfg.pe_count() as u64;
    }

    // ----- fault-filtered SRAM read wrappers -------------------------
    //
    // Each wrapper performs the metered buffer read and then filters
    // every delivered word through the fault plan, addressed by the
    // word's *logical* NB cell `(map, x, y)` (or flat index / weight
    // coordinate). Addressing by cell — not by access count — gives
    // persistent-faulty-cell semantics: the same cell faults identically
    // whichever read mode delivers it, so faulted runs are bit-identical
    // across the prepared/session/legacy paths.

    /// Mode (a)/(b)/(e) tile read through the fault filter.
    pub(crate) fn nb_tile(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
    ) -> Result<Vec<Fx>, RunError> {
        let mut vals = self
            .nbin
            .read_tile(map, (x0, y0), (w, h), (sx, sy), self.stats)?;
        if self.faults.active() {
            let layer = self.layer_index;
            for (n, v) in vals.iter_mut().enumerate() {
                let (i, j) = (n % w, n / w);
                let addr = [map as u64, (x0 + i * sx) as u64, (y0 + j * sy) as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(vals)
    }

    /// Mode (c) row read through the fault filter.
    pub(crate) fn nb_row(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sx: usize,
    ) -> Result<Vec<Fx>, RunError> {
        let mut vals = self.nbin.read_row(map, (x0, y0), n, sx, self.stats)?;
        if self.faults.active() {
            let layer = self.layer_index;
            for (i, v) in vals.iter_mut().enumerate() {
                let addr = [map as u64, (x0 + i * sx) as u64, y0 as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(vals)
    }

    /// Mode (f) column read through the fault filter.
    pub(crate) fn nb_col(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sy: usize,
    ) -> Result<Vec<Fx>, RunError> {
        let mut vals = self.nbin.read_col(map, (x0, y0), n, sy, self.stats)?;
        if self.faults.active() {
            let layer = self.layer_index;
            for (j, v) in vals.iter_mut().enumerate() {
                let addr = [map as u64, x0 as u64, (y0 + j * sy) as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(vals)
    }

    /// Mode (d) single-neuron read through the fault filter. Classifier
    /// layers address by flat index; a layer is either spatial or flat,
    /// so the address spaces cannot collide within one layer epoch.
    pub(crate) fn nb_single(&mut self, flat: usize) -> Result<Fx, RunError> {
        let v = self.nbin.read_single(flat, self.stats)?;
        if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self
                .faults
                .filter_value(FaultSite::NbIn, layer, [flat as u64, 0, 0], v)?);
        }
        Ok(v)
    }

    /// Mode (e) gather read through the fault filter.
    pub(crate) fn nb_gather(
        &mut self,
        map: usize,
        coords: &[(usize, usize)],
    ) -> Result<Vec<Fx>, RunError> {
        let mut vals = self.nbin.read_gather(map, coords, self.stats)?;
        if self.faults.active() {
            let layer = self.layer_index;
            for (v, &(x, y)) in vals.iter_mut().zip(coords) {
                let addr = [map as u64, x as u64, y as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(vals)
    }

    /// Filters one synapse word (weight or bias) served from the SB
    /// image. The caller meters the SB access; `addr` is the weight's
    /// logical coordinate in the image.
    #[inline]
    pub(crate) fn sb_value(&mut self, addr: [u64; 3], v: Fx) -> Result<Fx, RunError> {
        if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self.faults.filter_value(FaultSite::Sb, layer, addr, v)?);
        }
        Ok(v)
    }

    /// Filters one word of a staged NBout re-read (the decomposed LCN
    /// sub-layers re-read μ and v from NBout; `pass` tags which staged
    /// map). Other NBout contents manifest through the next layer's NBin
    /// reads after the role swap, so they are not separately injected.
    #[inline]
    pub(crate) fn nbout_value(
        &mut self,
        pass: u64,
        (x, y): (usize, usize),
        v: Fx,
    ) -> Result<Fx, RunError> {
        if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self.faults.filter_value(
                FaultSite::NbOut,
                layer,
                [pass, x as u64, y as u64],
                v,
            )?);
        }
        Ok(v)
    }
}

/// SB-image address of a per-output bias word.
#[inline]
pub(crate) fn bias_addr(out_unit: usize) -> [u64; 3] {
    [out_unit as u64, u64::MAX, 0]
}

/// SB-image address of a convolution kernel word.
#[inline]
pub(crate) fn conv_weight_addr(o: usize, j: usize, (kx, ky): (usize, usize)) -> [u64; 3] {
    [o as u64, j as u64, ((ky as u64) << 32) | kx as u64]
}

/// SB-image address of a classifier weight word.
#[inline]
pub(crate) fn fc_weight_addr(out_unit: usize, slot: usize) -> [u64; 3] {
    [out_unit as u64, slot as u64, u64::MAX]
}
