//! Cycle-level layer executors.
//!
//! Each executor drives the NFU mesh cycle by cycle, issuing NB controller
//! reads in the modes §7.1 assigns to its layer type, propagating data
//! between PEs through the FIFOs, and producing output neurons that are
//! **bit-identical** to the golden reference in `shidiannao-cnn`.
//!
//! All SRAM reads route through the `Engine`'s fault-filtering wrappers:
//! with an inactive [`FaultState`] they are pass-throughs, and with an
//! active one every word is filtered by address through the seeded fault
//! plan, so faulted executions are replayable and independent of the read
//! mode that happened to deliver a word.

mod conv;
mod fc;
mod norm;
mod packed;
mod pool;
pub(crate) mod replay;
pub mod values;
mod window;

pub(crate) use packed::applies_cfg as packed_applies_cfg;
pub(crate) use window::WindowOp;

use crate::accel::RunError;
use crate::alu::Alu;
use crate::buffer::{NeuronBuffer, ReadScratch, SynapseBuffer};
use crate::config::AcceleratorConfig;
use crate::hfsm::{FirstState, Hfsm};
use crate::nfu::Nfu;
use crate::sb::SynapseStore;
use crate::schedule::ScheduleRecorder;
use crate::stats::LayerStats;
use shidiannao_cnn::{Layer, LayerBody};
use shidiannao_faults::{FaultSite, FaultState};
use shidiannao_fixed::Fx;

/// Session-owned reusable working storage for the executors.
///
/// Every per-cycle buffer the hot path needs lives here, so a
/// steady-state simulated cycle performs zero heap allocations: the
/// vectors are `mem::take`n by an executor for the duration of a region,
/// refilled in place (`clear()` + `push`/`extend`), and handed back.
/// Capacities grow to each network's high-water mark during the first
/// inference and are reused thereafter.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Bank-conflict accounting storage for the NB controller.
    pub read: ReadScratch,
    /// Per-cycle received neurons (window sweep, LRN tiles).
    pub values: Vec<Fx>,
    /// Secondary read target (mode (c) bottom row / mode (f) right
    /// column merged into `values`).
    pub aux: Vec<Fx>,
    /// Epilogue drain buffer (accumulator read-out → ALU → write-back).
    pub vals: Vec<Fx>,
    /// Edge-clipped gather coordinates (non-overlapping pooling).
    pub coords: Vec<(usize, usize)>,
    /// PE lanes paired with `coords`.
    pub lanes: Vec<(usize, usize)>,
    /// Classifier group's union of input indices, ascending.
    pub idxs: Vec<usize>,
    /// Classifier per-PE sparse-row cursors.
    pub cursors: Vec<usize>,
    /// Per-PE-row i64 lane accumulators for the vectorized window
    /// reduction (one slot per active PE column).
    pub sums: Vec<i64>,
}

/// Mutable execution context threaded through the layer executors.
pub(crate) struct Engine<'a> {
    pub cfg: &'a AcceleratorConfig,
    pub nbin: &'a NeuronBuffer,
    pub nbout: &'a mut NeuronBuffer,
    pub sb: &'a SynapseBuffer,
    pub store: &'a SynapseStore,
    pub layer_index: usize,
    pub nfu: &'a mut Nfu,
    pub alu: &'a Alu,
    pub hfsm: &'a mut Hfsm,
    pub stats: &'a mut LayerStats,
    pub faults: &'a mut FaultState,
    pub scratch: &'a mut Scratch,
    /// Attached only during the one recording pass `prepare()` runs:
    /// the fault-filter hook points report every NB/SB word address to
    /// the recorder instead of filtering (the recording run is
    /// fault-free by construction). `None` on every session run, so the
    /// hot path pays a single never-taken branch.
    pub recorder: Option<&'a mut ScheduleRecorder>,
    /// Fast-kernel selection: `true` only when no fault plan is active,
    /// no PE stuck-at faults are installed, and no layer trace is being
    /// recorded. The fast kernel drives the mesh through bulk SoA
    /// operations; it is proven bit-identical (outputs, stats, energy)
    /// to the instrumented per-PE path.
    pub fast: bool,
}

impl Engine<'_> {
    /// Executes one layer; results are collected in `nbout`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::FaultDetected`] when SRAM protection detects an
    /// uncorrectable error, or [`RunError::EmptyBuffer`] on a read from an
    /// unloaded buffer.
    ///
    /// # Panics
    ///
    /// Panics on HFSM scheduling violations (internal invariants).
    pub(crate) fn run_layer(&mut self, layer: &Layer) -> Result<(), RunError> {
        match layer.body() {
            LayerBody::Conv { .. } => {
                self.hfsm.enter(FirstState::Conv).expect("HFSM: conv entry");
                if packed::applies(self, layer) {
                    packed::run_conv(self, layer)
                } else {
                    conv::run(self, layer)
                }
            }
            LayerBody::Pool { .. } => {
                self.hfsm.enter(FirstState::Pool).expect("HFSM: pool entry");
                pool::run(self, layer)
            }
            LayerBody::Fc { .. } => {
                self.hfsm
                    .enter(FirstState::Classifier)
                    .expect("HFSM: classifier entry");
                fc::run(self, layer)
            }
            LayerBody::Lrn(_) | LayerBody::Lcn { .. } => {
                self.hfsm.enter(FirstState::Norm).expect("HFSM: norm entry");
                norm::run(self, layer)
            }
        }
    }

    /// Charges one compute cycle with `busy` active PEs.
    #[inline]
    pub(crate) fn tick(&mut self, busy: usize) {
        self.stats.cycles += 1;
        self.stats.pe_busy_slots += busy as u64;
        self.stats.pe_total_slots += self.cfg.pe_count() as u64;
    }

    /// Charges `n` pure-latency cycles (ALU drain, write-back) with no PE
    /// activity.
    #[inline]
    pub(crate) fn tick_idle(&mut self, n: u64) {
        self.stats.cycles += n;
        self.stats.pe_total_slots += n * self.cfg.pe_count() as u64;
    }

    // ----- fault-filtered SRAM read wrappers -------------------------
    //
    // Each wrapper performs the metered buffer read and then filters
    // every delivered word through the fault plan, addressed by the
    // word's *logical* NB cell `(map, x, y)` (or flat index / weight
    // coordinate). Addressing by cell — not by access count — gives
    // persistent-faulty-cell semantics: the same cell faults identically
    // whichever read mode delivers it, so faulted runs are bit-identical
    // across the prepared/session/legacy paths.

    /// Mode (a)/(b)/(e) tile read through the fault filter, into `out`
    /// (cleared first).
    pub(crate) fn nb_tile_into(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        (sx, sy): (usize, usize),
        out: &mut Vec<Fx>,
    ) -> Result<(), RunError> {
        self.nbin.read_tile_into(
            map,
            (x0, y0),
            (w, h),
            (sx, sy),
            self.stats,
            &mut self.scratch.read,
            out,
        )?;
        if let Some(rec) = self.recorder.as_deref_mut() {
            for n in 0..out.len() {
                let (i, j) = (n % w, n / w);
                rec.note_nb([map as u64, (x0 + i * sx) as u64, (y0 + j * sy) as u64]);
            }
        } else if self.faults.active() {
            let layer = self.layer_index;
            for (n, v) in out.iter_mut().enumerate() {
                let (i, j) = (n % w, n / w);
                let addr = [map as u64, (x0 + i * sx) as u64, (y0 + j * sy) as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(())
    }

    /// Mode (a)/(b)/(e) tile read returning a fresh `Vec` — the cold-path
    /// wrapper (normalization layers, packed ablation).
    pub(crate) fn nb_tile(
        &mut self,
        map: usize,
        origin: (usize, usize),
        dims: (usize, usize),
        stride: (usize, usize),
    ) -> Result<Vec<Fx>, RunError> {
        let mut out = Vec::new();
        self.nb_tile_into(map, origin, dims, stride, &mut out)?;
        Ok(out)
    }

    /// Mode (c) row read through the fault filter, into `out` (cleared
    /// first).
    pub(crate) fn nb_row_into(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sx: usize,
        out: &mut Vec<Fx>,
    ) -> Result<(), RunError> {
        self.nbin.read_row_into(
            map,
            (x0, y0),
            n,
            sx,
            self.stats,
            &mut self.scratch.read,
            out,
        )?;
        if let Some(rec) = self.recorder.as_deref_mut() {
            for i in 0..out.len() {
                rec.note_nb([map as u64, (x0 + i * sx) as u64, y0 as u64]);
            }
        } else if self.faults.active() {
            let layer = self.layer_index;
            for (i, v) in out.iter_mut().enumerate() {
                let addr = [map as u64, (x0 + i * sx) as u64, y0 as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(())
    }

    /// Mode (f) column read through the fault filter, into `out` (cleared
    /// first).
    pub(crate) fn nb_col_into(
        &mut self,
        map: usize,
        (x0, y0): (usize, usize),
        n: usize,
        sy: usize,
        out: &mut Vec<Fx>,
    ) -> Result<(), RunError> {
        self.nbin.read_col_into(
            map,
            (x0, y0),
            n,
            sy,
            self.stats,
            &mut self.scratch.read,
            out,
        )?;
        if let Some(rec) = self.recorder.as_deref_mut() {
            for j in 0..out.len() {
                rec.note_nb([map as u64, x0 as u64, (y0 + j * sy) as u64]);
            }
        } else if self.faults.active() {
            let layer = self.layer_index;
            for (j, v) in out.iter_mut().enumerate() {
                let addr = [map as u64, x0 as u64, (y0 + j * sy) as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(())
    }

    /// Mode (d) single-neuron read through the fault filter. Classifier
    /// layers address by flat index; a layer is either spatial or flat,
    /// so the address spaces cannot collide within one layer epoch.
    pub(crate) fn nb_single(&mut self, flat: usize) -> Result<Fx, RunError> {
        let v = self.nbin.read_single(flat, self.stats)?;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.note_nb([flat as u64, 0, 0]);
        } else if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self
                .faults
                .filter_value(FaultSite::NbIn, layer, [flat as u64, 0, 0], v)?);
        }
        Ok(v)
    }

    /// Mode (e) gather read through the fault filter, into `out` (cleared
    /// first).
    pub(crate) fn nb_gather_into(
        &mut self,
        map: usize,
        coords: &[(usize, usize)],
        out: &mut Vec<Fx>,
    ) -> Result<(), RunError> {
        self.nbin
            .read_gather_into(map, coords, self.stats, &mut self.scratch.read, out)?;
        if let Some(rec) = self.recorder.as_deref_mut() {
            for &(x, y) in coords {
                rec.note_nb([map as u64, x as u64, y as u64]);
            }
        } else if self.faults.active() {
            let layer = self.layer_index;
            for (v, &(x, y)) in out.iter_mut().zip(coords) {
                let addr = [map as u64, x as u64, y as u64];
                *v = self.faults.filter_value(FaultSite::NbIn, layer, addr, *v)?;
            }
        }
        Ok(())
    }

    /// Mode (e) gather read returning a fresh `Vec` — the cold-path
    /// wrapper (LCN layers).
    pub(crate) fn nb_gather(
        &mut self,
        map: usize,
        coords: &[(usize, usize)],
    ) -> Result<Vec<Fx>, RunError> {
        let mut out = Vec::new();
        self.nb_gather_into(map, coords, &mut out)?;
        Ok(out)
    }

    // ----- charge-only read wrappers (analytic fast path) ------------
    //
    // The analytic sweep computes PE inputs directly from the loaded
    // stack and meters the SRAM accesses through these wrappers, which
    // tally the identical mode / byte / bank-conflict statistics without
    // moving data. No fault filtering: the fast kernel is only selected
    // when no fault plan is active.

    /// Charge-only mode (a)/(b)/(e) tile read.
    pub(crate) fn charge_nb_tile(
        &mut self,
        origin: (usize, usize),
        dims: (usize, usize),
        stride: (usize, usize),
    ) -> Result<(), RunError> {
        debug_assert!(!self.faults.active(), "analytic path with active faults");
        self.nbin
            .charge_tile_read(origin, dims, stride, self.stats, &mut self.scratch.read)?;
        Ok(())
    }

    /// Charge-only mode (c) row read.
    pub(crate) fn charge_nb_row(
        &mut self,
        origin: (usize, usize),
        n: usize,
        sx: usize,
    ) -> Result<(), RunError> {
        debug_assert!(!self.faults.active(), "analytic path with active faults");
        self.nbin
            .charge_row_read(origin, n, sx, self.stats, &mut self.scratch.read)?;
        Ok(())
    }

    /// Charge-only mode (f) column read.
    pub(crate) fn charge_nb_col(
        &mut self,
        origin: (usize, usize),
        n: usize,
        sy: usize,
    ) -> Result<(), RunError> {
        debug_assert!(!self.faults.active(), "analytic path with active faults");
        self.nbin
            .charge_col_read(origin, n, sy, self.stats, &mut self.scratch.read)?;
        Ok(())
    }

    /// Charge-only batch of `n` mode (d) single-neuron reads.
    pub(crate) fn charge_nb_singles(&mut self, n: u64) -> Result<(), RunError> {
        debug_assert!(!self.faults.active(), "analytic path with active faults");
        self.nbin.charge_single_reads(n, self.stats)?;
        Ok(())
    }

    /// Filters one synapse word (weight or bias) served from the SB
    /// image. The caller meters the SB access; `addr` is the weight's
    /// logical coordinate in the image.
    #[inline]
    pub(crate) fn sb_value(&mut self, addr: [u64; 3], v: Fx) -> Result<Fx, RunError> {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.note_sb(addr);
        } else if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self.faults.filter_value(FaultSite::Sb, layer, addr, v)?);
        }
        Ok(v)
    }

    /// Filters one word of a staged NBout re-read (the decomposed LCN
    /// sub-layers re-read μ and v from NBout; `pass` tags which staged
    /// map). Other NBout contents manifest through the next layer's NBin
    /// reads after the role swap, so they are not separately injected.
    #[inline]
    pub(crate) fn nbout_value(
        &mut self,
        pass: u64,
        (x, y): (usize, usize),
        v: Fx,
    ) -> Result<Fx, RunError> {
        if self.faults.active() {
            let layer = self.layer_index;
            return Ok(self.faults.filter_value(
                FaultSite::NbOut,
                layer,
                [pass, x as u64, y as u64],
                v,
            )?);
        }
        Ok(v)
    }
}

/// SB-image address of a per-output bias word.
#[inline]
pub(crate) fn bias_addr(out_unit: usize) -> [u64; 3] {
    [out_unit as u64, u64::MAX, 0]
}

/// SB-image address of a convolution kernel word.
#[inline]
pub(crate) fn conv_weight_addr(o: usize, j: usize, (kx, ky): (usize, usize)) -> [u64; 3] {
    [o as u64, j as u64, ((ky as u64) << 32) | kx as u64]
}

/// SB-image address of a classifier weight word.
#[inline]
pub(crate) fn fc_weight_addr(out_unit: usize, slot: usize) -> [u64; 3] {
    [out_unit as u64, slot as u64, u64::MAX]
}
