//! Classifier-layer executor (§8.3).

use super::{bias_addr, fc_weight_addr, Engine};
use crate::accel::RunError;
use shidiannao_cnn::{Layer, LayerBody};
use shidiannao_fixed::Fx;
use std::collections::BTreeSet;

/// Executes a (fully or partially connected) classifier layer.
///
/// "Each cycle of a classifier layer reads `Px × Py` different synaptic
/// weights and a single input neuron for all `Px × Py` PEs" — the input
/// neuron arrives through read mode (d) and is broadcast; each PE owns one
/// output neuron until it completes. Sparse classifiers (Table 2's
/// sub-full kernel counts) iterate the *union* of the group's input
/// indices; PEs whose row skips an index idle that cycle.
pub(super) fn run(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    let LayerBody::Fc {
        weights,
        activation,
    } = layer.body()
    else {
        unreachable!("classifier executor fed a non-classifier layer");
    };
    let pe_count = eng.cfg.pe_count();
    let px = eng.cfg.pe_cols;
    let out_count = layer.out_maps();

    for group_start in (0..out_count).step_by(pe_count) {
        let group_len = pe_count.min(out_count - group_start);

        // Load the group's biases (one wide SB read).
        eng.sb.read_wide(group_len, eng.stats);
        for i in 0..group_len {
            let bias = eng.store.bias(eng.layer_index, group_start + i);
            let bias = eng.sb_value(bias_addr(group_start + i), bias)?;
            eng.nfu.pe_mut(i % px, i / px).reset_accumulator(bias);
        }

        // The distinct input indices any PE in the group needs, ascending
        // (rows are sorted, so per-PE cursors advance monotonically).
        let union: BTreeSet<usize> = (0..group_len)
            .flat_map(|i| weights.row(group_start + i).iter().map(|&(idx, _)| idx))
            .collect();
        let mut cursors = vec![0usize; group_len];

        for &idx in &union {
            // One broadcast neuron (mode (d)) + one wide synapse read.
            let neuron = eng.nb_single(idx)?;
            eng.sb.read_wide(pe_count, eng.stats);
            let mut busy = 0;
            for (i, cursor) in cursors.iter_mut().enumerate() {
                let row = weights.row(group_start + i);
                if *cursor < row.len() && row[*cursor].0 == idx {
                    // The row's sparsity pattern is decoder metadata; the
                    // weight itself streams from the SB image.
                    let w = eng
                        .store
                        .fc_weight(eng.layer_index, group_start + i, *cursor);
                    let w = eng.sb_value(fc_weight_addr(group_start + i, *cursor), w)?;
                    eng.nfu.pe_mut(i % px, i / px).mac(neuron, w);
                    eng.stats.pe_muls += 1;
                    eng.stats.pe_adds += 1;
                    *cursor += 1;
                    busy += 1;
                }
            }
            eng.tick(busy);
        }

        // Epilogue: activation through the ALU, then one grouped write.
        let mut vals: Vec<Fx> = (0..group_len)
            .map(|i| eng.nfu.pe(i % px, i / px).accumulator())
            .collect();
        // Pipelined ALU: activation latency hides behind the next
        // group's MAC stream; one flush cycle remains.
        let _ = eng.alu.activate(&mut vals, *activation, eng.stats);
        eng.tick_idle(1);
        eng.nbout.write_scalar_group(group_start, &vals, eng.stats);
    }
    Ok(())
}
