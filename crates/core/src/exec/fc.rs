//! Classifier-layer executor (§8.3).

use super::values::{classifier_dot_raw, LaneKernel};
use super::{bias_addr, fc_weight_addr, Engine};
use crate::accel::RunError;
use core::mem;
use shidiannao_cnn::{FcWeights, Layer, LayerBody};
use shidiannao_fixed::Fx;

/// Executes a (fully or partially connected) classifier layer.
///
/// "Each cycle of a classifier layer reads `Px × Py` different synaptic
/// weights and a single input neuron for all `Px × Py` PEs" — the input
/// neuron arrives through read mode (d) and is broadcast; each PE owns one
/// output neuron until it completes. Sparse classifiers (Table 2's
/// sub-full kernel counts) iterate the *union* of the group's input
/// indices; PEs whose row skips an index idle that cycle.
pub(super) fn run(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    let mut idxs = mem::take(&mut eng.scratch.idxs);
    let mut cursors = mem::take(&mut eng.scratch.cursors);
    let mut vals = mem::take(&mut eng.scratch.vals);
    let mut flat = mem::take(&mut eng.scratch.values);
    let result = run_groups(eng, layer, &mut idxs, &mut cursors, &mut vals, &mut flat);
    eng.scratch.idxs = idxs;
    eng.scratch.cursors = cursors;
    eng.scratch.vals = vals;
    eng.scratch.values = flat;
    result
}

/// The group loop proper, split out so the scratch buffers above can be
/// restored even when a faulted access exits early with `?`.
fn run_groups(
    eng: &mut Engine<'_>,
    layer: &Layer,
    idxs: &mut Vec<usize>,
    cursors: &mut Vec<usize>,
    vals: &mut Vec<Fx>,
    flat: &mut Vec<Fx>,
) -> Result<(), RunError> {
    let LayerBody::Fc {
        weights,
        activation,
    } = layer.body()
    else {
        unreachable!("classifier executor fed a non-classifier layer");
    };
    let pe_count = eng.cfg.pe_count();
    let px = eng.cfg.pe_cols;
    let out_count = layer.out_maps();
    // Full connectivity means the union loop below degenerates to
    // `0..in_count` for every group — the fast path exploits that to
    // skip building (and sorting) the explicit index union.
    let dense = (0..out_count).all(|n| weights.row(n).len() == weights.in_count());
    let mut flattened = false;

    for group_start in (0..out_count).step_by(pe_count) {
        let group_len = pe_count.min(out_count - group_start);

        // Load the group's biases (one wide SB read).
        eng.sb.read_wide(group_len, eng.stats);
        for i in 0..group_len {
            let bias = eng.store.bias(eng.layer_index, group_start + i);
            let bias = eng.sb_value(bias_addr(group_start + i), bias)?;
            eng.nfu.pe_mut(i % px, i / px).reset_accumulator(bias);
        }

        if eng.fast {
            fast_group(
                eng,
                weights,
                group_start,
                group_len,
                dense,
                idxs,
                flat,
                &mut flattened,
            )?;
        } else {
            slow_group(eng, weights, group_start, group_len, idxs, cursors)?;
        }

        // Epilogue: activation through the ALU, then one grouped write.
        vals.clear();
        for i in 0..group_len {
            vals.push(eng.nfu.pe(i % px, i / px).accumulator());
        }
        // Pipelined ALU: activation latency hides behind the next
        // group's MAC stream; one flush cycle remains.
        let _ = eng.alu.activate(vals, *activation, eng.stats);
        eng.tick_idle(1);
        eng.nbout.write_scalar_group(group_start, vals, eng.stats);
    }
    Ok(())
}

/// The instrumented union loop: one mode (d) broadcast + one wide SB read
/// per distinct input index, PEs matching via per-row cursors.
fn slow_group(
    eng: &mut Engine<'_>,
    weights: &FcWeights,
    group_start: usize,
    group_len: usize,
    idxs: &mut Vec<usize>,
    cursors: &mut Vec<usize>,
) -> Result<(), RunError> {
    // The distinct input indices any PE in the group needs, ascending
    // (rows are sorted, so per-PE cursors advance monotonically).
    idxs.clear();
    for i in 0..group_len {
        idxs.extend(weights.row(group_start + i).iter().map(|&(idx, _)| idx));
    }
    idxs.sort_unstable();
    idxs.dedup();
    cursors.clear();
    cursors.resize(group_len, 0);

    for &idx in idxs.iter() {
        // One broadcast neuron (mode (d)) + one wide synapse read.
        let neuron = eng.nb_single(idx)?;
        eng.sb.read_wide(eng.cfg.pe_count(), eng.stats);
        let mut busy = 0;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            let row = weights.row(group_start + i);
            if *cursor < row.len() && row[*cursor].0 == idx {
                // The row's sparsity pattern is decoder metadata; the
                // weight itself streams from the SB image.
                let w = eng
                    .store
                    .fc_weight(eng.layer_index, group_start + i, *cursor);
                let w = eng.sb_value(fc_weight_addr(group_start + i, *cursor), w)?;
                eng.nfu
                    .pe_mut(i % eng.cfg.pe_cols, i / eng.cfg.pe_cols)
                    .mac(neuron, w);
                eng.stats.pe_muls += 1;
                eng.stats.pe_adds += 1;
                *cursor += 1;
                busy += 1;
            }
        }
        eng.tick(busy);
    }
    Ok(())
}

/// The analytic fast path: the union loop's per-cycle bookkeeping has a
/// closed form, and each PE's MAC stream is its weight row in ascending
/// index order (exactly the order the cursors walk), so the accumulation
/// is computed as one dot product per PE over the flattened input — the
/// per-accumulator operation sequence, and therefore the result, is
/// bit-identical to [`slow_group`].
///
/// Statistics: with `U` distinct input indices in the group's union and
/// `B` total row entries (each entry matches its index exactly once),
/// the union loop charges `U` mode (d) reads, `U` wide SB reads, `U`
/// cycles, `B` busy PE slots, and `B` muls + adds.
#[allow(clippy::too_many_arguments)]
fn fast_group(
    eng: &mut Engine<'_>,
    weights: &FcWeights,
    group_start: usize,
    group_len: usize,
    dense: bool,
    idxs: &mut Vec<usize>,
    flat: &mut Vec<Fx>,
    flattened: &mut bool,
) -> Result<(), RunError> {
    let union = if dense {
        weights.in_count()
    } else {
        idxs.clear();
        for i in 0..group_len {
            idxs.extend(weights.row(group_start + i).iter().map(|&(idx, _)| idx));
        }
        idxs.sort_unstable();
        idxs.dedup();
        idxs.len()
    } as u64;
    let matched: u64 = (0..group_len)
        .map(|i| weights.row(group_start + i).len() as u64)
        .sum();

    if union > 0 {
        // Guarded so an all-empty group charges (and checks) nothing,
        // exactly like a union loop with zero iterations.
        eng.charge_nb_singles(union)?;
    }
    eng.sb.read_wide_burst(eng.cfg.pe_count(), union, eng.stats);
    eng.stats.pe_muls += matched;
    eng.stats.pe_adds += matched;
    eng.stats.cycles += union;
    eng.stats.pe_busy_slots += matched;
    eng.stats.pe_total_slots += union * eng.cfg.pe_count() as u64;

    if matched > 0 && !*flattened {
        // Flatten the input once per layer, in mode (d)'s flat addressing
        // order (map-major, row-major — each map's backing slice).
        let stack = eng
            .nbin
            .contents()
            .expect("charged reads verified the load");
        flat.clear();
        for fm in stack.iter() {
            flat.extend_from_slice(fm.as_slice());
        }
        *flattened = true;
    }

    let store = eng.store;
    let layer_index = eng.layer_index;
    let px = eng.cfg.pe_cols;
    for i in 0..group_len {
        let row = weights.row(group_start + i);
        let wrow = store.fc_row(layer_index, group_start + i, row.len());
        let dot = classifier_dot_raw(&LaneKernel, flat, row, wrow);
        eng.nfu.acc_mut(i % px, i / px).add_raw(dot);
    }
    Ok(())
}
