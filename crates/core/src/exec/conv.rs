//! Convolutional-layer executor (§8.1, Fig. 13).

use super::window::{blocks, run_pass, Pass};
use super::{bias_addr, conv_weight_addr, Engine, WindowOp};
use crate::accel::RunError;
use core::mem;
use shidiannao_cnn::{Layer, LayerBody};

/// Executes a convolutional layer.
///
/// The accelerator "continuously performs the computations of an output
/// feature map, and will not move to the next output feature map until the
/// current map has been constructed"; within a map, each PE owns one
/// output neuron per block. For every (block × connected input map) pair a
/// window pass sweeps the kernel, accumulating into the PEs; the ALU then
/// applies the activation and the output register array flushes the block
/// to NBout.
pub(super) fn run(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    let LayerBody::Conv {
        table,
        kernel,
        stride,
        activation,
        ..
    } = layer.body()
    else {
        unreachable!("conv executor fed a non-conv layer");
    };
    let out_dims = layer.out_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);

    for o in 0..layer.out_maps() {
        for (origin, active) in blocks(out_dims, pe_dims) {
            // Load the output map's bias into every active PE (one SB
            // broadcast). Weights are served from the resident SB image
            // (§6), not from the network description.
            eng.sb.read_broadcast(eng.stats);
            let bias = eng.store.bias(eng.layer_index, o);
            let bias = eng.sb_value(bias_addr(o), bias)?;
            for py in 0..active.1 {
                for px in 0..active.0 {
                    eng.nfu.pe_mut(px, py).reset_accumulator(bias);
                }
            }

            // One window pass per connected input map; the PE accumulators
            // carry partial sums across maps (formula (1)'s Σ over A_mo).
            for (j, &im) in table.inputs_of(o).iter().enumerate() {
                run_pass(
                    eng,
                    Pass {
                        map: im,
                        block: origin,
                        active,
                        kernel: *kernel,
                        stride: *stride,
                    },
                    WindowOp::Mac,
                    |eng, kx, ky| {
                        let w = eng
                            .store
                            .conv_weight(eng.layer_index, o, j, (kx, ky), *kernel);
                        eng.sb_value(conv_weight_addr(o, j, (kx, ky)), w)
                    },
                )?;
            }

            // Epilogue: drain accumulators through the ALU and flush the
            // block (Fig. 9's output register array).
            let mut vals = mem::take(&mut eng.scratch.vals);
            eng.nfu.read_accumulators_into(active, &mut vals);
            // The ALU is pipelined behind double-buffered output
            // registers: its latency overlaps the next block's compute, so
            // only the one-cycle block flush shows on the critical path.
            let _ = eng.alu.activate(&mut vals, *activation, eng.stats);
            eng.tick_idle(1);
            eng.nbout.write_block(o, origin, active, &vals, eng.stats);
            eng.scratch.vals = vals;
        }
    }
    Ok(())
}
