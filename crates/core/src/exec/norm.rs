//! Normalization-layer executors (§8.4, Figs. 15–16).
//!
//! LRN and LCN layers are decomposed into NFU primitives (element-wise
//! square, matrix addition, convolution-like weighted sums) plus ALU
//! operations (division, square root via the PLA), exactly mirroring the
//! golden reference's operation ordering so results stay bit-identical.

use super::window::blocks;
use super::Engine;
use crate::accel::RunError;
use shidiannao_cnn::{Layer, LayerBody, LrnSpec};
use shidiannao_fixed::{Accum, Fx};
use shidiannao_tensor::FeatureMap;

// NBout staged-read tags for the fault filter: LCN stages μ and v through
// NBout and re-reads them in later sub-passes; each re-read pass is its
// own fault address space.
const STAGE_MU: u64 = 0;
const STAGE_V_SQUARE: u64 = 1;
const STAGE_V_DIVIDE: u64 = 2;

/// Dispatches a normalization layer.
pub(super) fn run(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    match layer.body() {
        LayerBody::Lrn(spec) => run_lrn(eng, layer, spec),
        LayerBody::Lcn { gauss, .. } => run_lcn(eng, layer, gauss),
        _ => unreachable!("norm executor fed a non-normalization layer"),
    }
}

/// LRN (formula (3), Fig. 15): per position, square-accumulate the
/// cross-map window in the PEs, apply the `k + α·s` scale in the NFU, and
/// divide in the ALU.
fn run_lrn(eng: &mut Engine<'_>, layer: &Layer, spec: &LrnSpec) -> Result<(), RunError> {
    let dims = layer.in_dims();
    let maps = layer.in_maps();
    let half = spec.window_maps / 2;
    let (k, alpha) = (spec.k_fx(), spec.alpha_fx());
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);

    for mi in 0..maps {
        let lo = mi.saturating_sub(half);
        let hi = (mi + half).min(maps - 1);
        for (origin, active) in blocks(dims, pe_dims) {
            let (aw, ah) = active;
            for py in 0..ah {
                for px in 0..aw {
                    eng.nfu.pe_mut(px, py).reset_accumulator(Fx::ZERO);
                }
            }
            // Square-accumulate pass: one tile read + one square MAC per
            // window map per cycle.
            for j in lo..=hi {
                let vals = eng.nb_tile(j, origin, active, (1, 1))?;
                for py in 0..ah {
                    for px in 0..aw {
                        let v = vals[py * aw + px];
                        eng.nfu.pe_mut(px, py).mac(v, v);
                        eng.stats.pe_muls += 1;
                        eng.stats.pe_adds += 1;
                    }
                }
                eng.tick(aw * ah);
            }
            // Scale-and-offset in the NFU (one cycle): denom = k + α·s.
            let mut denoms: Vec<Fx> = Vec::with_capacity(aw * ah);
            for py in 0..ah {
                for px in 0..aw {
                    denoms.push(k + alpha * eng.nfu.pe(px, py).accumulator());
                }
            }
            eng.stats.pe_muls += (aw * ah) as u64;
            eng.stats.pe_adds += (aw * ah) as u64;
            eng.tick(aw * ah);
            // Divide the layer's own neurons in the ALU and flush.
            let mut own = eng.nb_tile(mi, origin, active, (1, 1))?;
            let div_cycles = eng.alu.divide_elementwise(&mut own, &denoms, eng.stats);
            eng.tick_idle(div_cycles.max(1));
            eng.nbout.write_block(mi, origin, active, &own, eng.stats);
        }
    }
    Ok(())
}

/// LCN (formulae (4)–(6), Fig. 16): Gaussian subtractive pass, weighted
/// variance, ALU square root, mean, and divisive pass.
///
/// Intermediate maps (μ, v, δ) are staged through NBout like the paper's
/// decomposed sub-layers; their traffic is charged to NBout.
fn run_lcn(eng: &mut Engine<'_>, layer: &Layer, gauss: &FeatureMap<Fx>) -> Result<(), RunError> {
    let (w, h) = layer.in_dims();
    let maps = layer.in_maps();
    let win = gauss.width();
    let half = win / 2;
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);

    // Pass 1: μ = Σ_{j,p,q} ω(p,q) · I_j (clipped at edges), computed
    // blockwise with one gather + one MAC per (j, p, q) cycle.
    let mut mu = FeatureMap::filled(w, h, Fx::ZERO);
    for (origin, active) in blocks((w, h), pe_dims) {
        let (aw, ah) = active;
        for py in 0..ah {
            for px in 0..aw {
                eng.nfu.pe_mut(px, py).reset_accumulator(Fx::ZERO);
            }
        }
        for j in 0..maps {
            for q in 0..win {
                for p in 0..win {
                    let wgt = gauss[(p, q)];
                    let mut coords = Vec::new();
                    let mut lanes = Vec::new();
                    for py in 0..ah {
                        for px in 0..aw {
                            let (x, y) = (origin.0 + px, origin.1 + py);
                            let (xx, yy) = (x + p, y + q);
                            if xx < half || yy < half || xx - half >= w || yy - half >= h {
                                continue;
                            }
                            coords.push((xx - half, yy - half));
                            lanes.push((px, py));
                        }
                    }
                    let vals = eng.nb_gather(j, &coords)?;
                    for (&(px, py), v) in lanes.iter().zip(vals) {
                        eng.nfu.pe_mut(px, py).mac(wgt, v);
                        eng.stats.pe_muls += 1;
                        eng.stats.pe_adds += 1;
                    }
                    eng.tick(lanes.len());
                }
            }
        }
        for py in 0..ah {
            for px in 0..aw {
                mu[(origin.0 + px, origin.1 + py)] = eng.nfu.pe(px, py).accumulator();
            }
        }
        // Stage μ through NBout (decomposed sub-layer write).
        eng.stats.nbout.write((aw * ah * 2) as u64);
        eng.tick_idle(1);
    }

    // Pass 2: v_j = I_j − μ (matrix subtraction in the NFU).
    let mut v: Vec<FeatureMap<Fx>> = Vec::with_capacity(maps);
    for j in 0..maps {
        let mut vj = FeatureMap::filled(w, h, Fx::ZERO);
        for (origin, active) in blocks((w, h), pe_dims) {
            let (aw, ah) = active;
            let own = eng.nb_tile(j, origin, active, (1, 1))?;
            // μ arrives back from NBout (a staged re-read: fault-filtered
            // per word).
            eng.stats.nbout.read((aw * ah * 2) as u64);
            for py in 0..ah {
                for px in 0..aw {
                    let (x, y) = (origin.0 + px, origin.1 + py);
                    let m = eng.nbout_value(STAGE_MU, (x, y), mu[(x, y)])?;
                    vj[(x, y)] = own[py * aw + px] - m;
                }
            }
            eng.stats.pe_adds += (aw * ah) as u64;
            eng.tick(aw * ah);
            eng.stats.nbout.write((aw * ah * 2) as u64);
        }
        v.push(vj);
    }

    // Pass 3: δ = √(Σ ω v²), squares in the NFU, root in the ALU.
    let mut delta = FeatureMap::filled(w, h, Fx::ZERO);
    for (origin, active) in blocks((w, h), pe_dims) {
        let (aw, ah) = active;
        for py in 0..ah {
            for px in 0..aw {
                eng.nfu.pe_mut(px, py).reset_accumulator(Fx::ZERO);
            }
        }
        for vj in &v {
            for q in 0..win {
                for p in 0..win {
                    let wgt = gauss[(p, q)];
                    let mut busy = 0;
                    for py in 0..ah {
                        for px in 0..aw {
                            let (x, y) = (origin.0 + px, origin.1 + py);
                            let (xx, yy) = (x + p, y + q);
                            if xx < half || yy < half || xx - half >= w || yy - half >= h {
                                continue;
                            }
                            // v is staged in NBout; charge (and fault-
                            // filter) the re-read.
                            let c = (xx - half, yy - half);
                            let s = eng.nbout_value(STAGE_V_SQUARE, c, vj[c])?.squared();
                            eng.nfu.pe_mut(px, py).mac(wgt, s);
                            eng.stats.pe_muls += 2; // square + weight
                            eng.stats.pe_adds += 1;
                            busy += 1;
                        }
                    }
                    eng.stats.nbout.read((busy * 2) as u64);
                    eng.tick(busy);
                }
            }
        }
        let mut vals: Vec<Fx> = Vec::with_capacity(aw * ah);
        for py in 0..ah {
            for px in 0..aw {
                vals.push(eng.nfu.pe(px, py).accumulator());
            }
        }
        let cycles = eng.alu.sqrt(&mut vals, eng.stats);
        eng.tick_idle(cycles.max(1));
        for py in 0..ah {
            for px in 0..aw {
                delta[(origin.0 + px, origin.1 + py)] = vals[py * aw + px];
            }
        }
        eng.stats.nbout.write((aw * ah * 2) as u64);
    }

    // Mean of δ (running sum in the NFU, one ALU division).
    let mut sum = Accum::new();
    for d in delta.iter() {
        sum.add_fx(*d);
    }
    eng.stats.pe_adds += (w * h) as u64;
    eng.tick_idle(((w * h).div_ceil(eng.cfg.pe_count())) as u64);
    let mean_delta = sum.mean(w * h);
    eng.stats.alu_divs += 1;
    eng.tick_idle(1);

    // Pass 4: O = v / max(mean(δ), δ) in the ALU, flushed per block.
    for (j, vj) in v.iter().enumerate() {
        for (origin, active) in blocks((w, h), pe_dims) {
            let (aw, ah) = active;
            let mut vals = Vec::with_capacity(aw * ah);
            for py in 0..ah {
                for px in 0..aw {
                    let (x, y) = (origin.0 + px, origin.1 + py);
                    let d = mean_delta.max(delta[(x, y)]);
                    let vv = eng.nbout_value(STAGE_V_DIVIDE, (x, y), vj[(x, y)])?;
                    vals.push(if d == Fx::ZERO { vv } else { vv / d });
                }
            }
            eng.stats.nbout.read((aw * ah * 2) as u64);
            eng.stats.alu_divs += (aw * ah) as u64;
            eng.tick_idle(eng.alu.cycles_for(aw * ah).max(1));
            eng.nbout.write_block(j, origin, active, &vals, eng.stats);
        }
    }
    Ok(())
}
