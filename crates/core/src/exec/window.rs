//! The shared sliding-window sweep engine (Fig. 13's dataflow).
//!
//! Convolutional layers and overlapping pooling layers share the same
//! access pattern: a `Px × Py` block of PEs sweeps a `Kx × Ky` window
//! row-major (`kx` fastest); fresh neurons enter at the rightmost PE
//! column (read mode (f)) or the bottom PE row (mode (c)), everything else
//! propagates through the FIFOs. This module implements one *window pass*
//! — one (output block × input map) sweep — exactly as the paper's Fig. 13
//! walkthrough prescribes.

use super::values::{sum_to_raw, LaneKernel, ValueKernel};
use super::Engine;
use crate::accel::RunError;
use crate::hfsm::SecondState;
use core::mem;
use shidiannao_fixed::Fx;

/// What each PE does with the neuron it receives in a sweep cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WindowOp {
    /// Multiply by the broadcast kernel value and accumulate
    /// (convolution).
    Mac,
    /// Compare into the max register (max pooling).
    Max,
    /// Accumulate (average pooling / matrix sums).
    Add,
}

/// Geometry of one window pass.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pass {
    /// Input map index being swept.
    pub map: usize,
    /// Output-block origin in output coordinates `(ox0, oy0)`.
    pub block: (usize, usize),
    /// Active PE extent `(aw, ah)` — fewer than `Px × Py` at map edges.
    pub active: (usize, usize),
    /// Kernel / window `(Kx, Ky)`.
    pub kernel: (usize, usize),
    /// Stride `(Sx, Sy)`.
    pub stride: (usize, usize),
}

impl Pass {
    /// Input-space coordinate PE `(px, py)` needs at kernel offset
    /// `(kx, ky)`.
    #[inline]
    fn input_at(&self, px: usize, py: usize, kx: usize, ky: usize) -> (usize, usize) {
        (
            (self.block.0 + px) * self.stride.0 + kx,
            (self.block.1 + py) * self.stride.1 + ky,
        )
    }
}

/// Runs one window pass, feeding each active PE one neuron per cycle and
/// applying `op`. For [`WindowOp::Mac`], `kernel_value(eng, kx, ky)`
/// supplies the synapse broadcast from SB that cycle (the engine charges
/// the SB read; the closure routes the word through the fault filter).
///
/// Accumulation lives in the PEs. The per-cycle storage comes from the
/// session's scratch arena, so a steady-state sweep cycle allocates
/// nothing; when `eng.fast` is set the mesh is driven through the bulk
/// SoA operations instead of per-PE views (bit-identical by
/// construction — the NB reads, HFSM steps, and statistics are shared).
pub(crate) fn run_pass(
    eng: &mut Engine<'_>,
    pass: Pass,
    op: WindowOp,
    mut kernel_value: impl FnMut(&mut Engine<'_>, usize, usize) -> Result<Fx, RunError>,
) -> Result<(), RunError> {
    let mut values = mem::take(&mut eng.scratch.values);
    let mut aux = mem::take(&mut eng.scratch.aux);
    let result = sweep(eng, pass, op, &mut kernel_value, &mut values, &mut aux);
    eng.scratch.values = values;
    eng.scratch.aux = aux;
    result
}

fn sweep(
    eng: &mut Engine<'_>,
    pass: Pass,
    op: WindowOp,
    kernel_value: &mut impl FnMut(&mut Engine<'_>, usize, usize) -> Result<Fx, RunError>,
    values: &mut Vec<Fx>,
    aux: &mut Vec<Fx>,
) -> Result<(), RunError> {
    let (aw, ah) = pass.active;
    let (kx_max, ky_max) = pass.kernel;
    let (sx, sy) = pass.stride;
    let propagate = eng.cfg.inter_pe_propagation;
    let cells = (aw * ah) as u64;

    if eng.fast && propagate {
        return analytic(eng, pass, op, kernel_value, values);
    }

    // Window-pass boundary: stale FIFO-V (and FIFO-H) contents from the
    // previous pass are discarded, and the phase ring advances.
    if eng.hfsm.second() != SecondState::Init {
        eng.hfsm
            .step(SecondState::NextWindow)
            .expect("HFSM: next window");
    }
    eng.nfu.set_fifo_depths(sx, sy);
    eng.nfu.clear_fifos_v();

    for ky in 0..ky_max {
        // Kernel-row boundary: FIFO-H keeps only values of the current row.
        eng.nfu.clear_fifos_h();
        for kx in 0..kx_max {
            // Values received this cycle, row-major over the active block.
            if !propagate {
                // Fig. 7 ablation: every PE re-reads from NBin each cycle.
                eng.nb_tile_into(
                    pass.map,
                    pass.input_at(0, 0, kx, ky),
                    (aw, ah),
                    (sx, sy),
                    values,
                )?;
            } else if kx == 0 && ky == 0 {
                // Fig. 13 cycle #0: full tile fill, read mode (a)/(b)
                // (or (e) when strided).
                eng.hfsm.step(SecondState::Fill).expect("HFSM: fill");
                eng.nb_tile_into(
                    pass.map,
                    pass.input_at(0, 0, 0, 0),
                    (aw, ah),
                    (sx, sy),
                    values,
                )?;
            } else if kx == 0 {
                // New kernel row (Fig. 13 cycle #3).
                eng.hfsm.step(SecondState::NextRow).expect("HFSM: next row");
                eng.hfsm.step(SecondState::VMode).expect("HFSM: v-mode");
                if ky < sy {
                    // The row below never read this input row within this
                    // window: everyone refills from NBin.
                    eng.nb_tile_into(
                        pass.map,
                        pass.input_at(0, 0, 0, ky),
                        (aw, ah),
                        (sx, sy),
                        values,
                    )?;
                } else {
                    // Upper rows pop the FIFO-V of the PE below; the bottom
                    // active row reads Px neurons from one bank (mode (c)).
                    values.resize(aw * ah, Fx::ZERO);
                    if eng.fast {
                        eng.nfu.propagate_v_block((aw, ah), values);
                        eng.stats.fifo_pops += ((ah - 1) * aw) as u64;
                    } else {
                        for py in 0..ah - 1 {
                            for px in 0..aw {
                                values[py * aw + px] = eng.nfu.propagate_from_below(px, py);
                                eng.stats.fifo_pops += 1;
                            }
                        }
                    }
                    eng.nb_row_into(pass.map, pass.input_at(0, ah - 1, 0, ky), aw, sx, aux)?;
                    values[(ah - 1) * aw..].copy_from_slice(aux);
                }
            } else {
                // Horizontal step (Fig. 13 cycles #1–#2).
                eng.hfsm.step(SecondState::HMode).expect("HFSM: h-mode");
                if kx < sx {
                    eng.nb_tile_into(
                        pass.map,
                        pass.input_at(0, 0, kx, ky),
                        (aw, ah),
                        (sx, sy),
                        values,
                    )?;
                } else {
                    // Left PEs pop the right neighbour's FIFO-H; the
                    // rightmost active column reads a column (mode (f)).
                    values.resize(aw * ah, Fx::ZERO);
                    if eng.fast {
                        eng.nfu.propagate_h_block((aw, ah), values);
                        eng.stats.fifo_pops += (ah * (aw - 1)) as u64;
                    } else {
                        for py in 0..ah {
                            for px in 0..aw - 1 {
                                values[py * aw + px] = eng.nfu.propagate_from_right(px, py);
                                eng.stats.fifo_pops += 1;
                            }
                        }
                    }
                    eng.nb_col_into(pass.map, pass.input_at(aw - 1, 0, kx, ky), ah, sy, aux)?;
                    for py in 0..ah {
                        values[py * aw + (aw - 1)] = aux[py];
                    }
                }
            }

            // Every PE collects its received neuron into FIFO-H; first-
            // column values additionally enter FIFO-V (Fig. 13 legend).
            let k = if op == WindowOp::Mac {
                eng.sb.read_broadcast(eng.stats);
                kernel_value(eng, kx, ky)?
            } else {
                Fx::ZERO
            };
            if eng.fast {
                // Fast kernel: one fused pass over the SoA arrays, with
                // the per-PE statistics batched.
                if propagate {
                    eng.stats.fifo_pushes += if kx == 0 { 2 * cells } else { cells };
                    match op {
                        WindowOp::Mac => eng.nfu.receive_mac((aw, ah), values, k, kx == 0),
                        WindowOp::Max => eng.nfu.receive_max((aw, ah), values, kx == 0),
                        WindowOp::Add => eng.nfu.receive_add((aw, ah), values, kx == 0),
                    }
                } else {
                    match op {
                        WindowOp::Mac => eng.nfu.apply_mac((aw, ah), values, k),
                        WindowOp::Max => eng.nfu.apply_max((aw, ah), values),
                        WindowOp::Add => eng.nfu.apply_add((aw, ah), values),
                    }
                }
                match op {
                    WindowOp::Mac => {
                        eng.stats.pe_muls += cells;
                        eng.stats.pe_adds += cells;
                    }
                    WindowOp::Max => eng.stats.pe_cmps += cells,
                    WindowOp::Add => eng.stats.pe_adds += cells,
                }
            } else {
                for py in 0..ah {
                    for px in 0..aw {
                        let v = values[py * aw + px];
                        let mut pe = eng.nfu.pe_mut(px, py);
                        if propagate {
                            pe.push_h(v);
                            eng.stats.fifo_pushes += 1;
                            if kx == 0 {
                                pe.push_v(v);
                                eng.stats.fifo_pushes += 1;
                            }
                        }
                        match op {
                            WindowOp::Mac => {
                                pe.mac(v, k);
                                eng.stats.pe_muls += 1;
                                eng.stats.pe_adds += 1;
                            }
                            WindowOp::Max => {
                                pe.compare(v);
                                eng.stats.pe_cmps += 1;
                            }
                            WindowOp::Add => {
                                pe.add(v);
                                eng.stats.pe_adds += 1;
                            }
                        }
                    }
                }
            }
            eng.tick(aw * ah);
        }
    }
    eng.nfu.record_fifo_peaks(eng.stats);
    Ok(())
}

/// The analytic fast pass: exploits the closed form of the Fig. 13
/// dataflow instead of emulating it cycle by cycle.
///
/// In fast mode (no faults, no trace) the value PE `(px, py)` receives at
/// kernel offset `(kx, ky)` is *by construction* the input-map value at
/// its window coordinate [`Pass::input_at`] — the FIFO propagation
/// network only ever moves that value into place. So the pass splits into
///
/// 1. a **statistics sweep** that replays the exact HFSM step sequence
///    and charges the exact NB/SB accesses of the cycle-accurate loop
///    (via the charge-only read variants) while staging the kernel
///    weights in cycle order, and
/// 2. a **compute pass** that reduces each active PE's window directly
///    from the feature map, in the same `(ky, kx)` row-major order — the
///    per-accumulator operation sequence is identical, so the result is
///    bit-identical.
///
/// FIFO traffic has closed forms: every active PE pushes each received
/// value (plus a FIFO-V push on `kx == 0` cycles), pops happen on the
/// propagated cycles, and the peak occupancies are `min(Kx, Sx)` /
/// `min(Ky, Sy)` — the §5.1 sizing — reached uniformly by every active
/// PE (column 0 / row 0 are never popped but evict at depth; popped PEs
/// drain and refill each cycle, holding the same level).
fn analytic(
    eng: &mut Engine<'_>,
    pass: Pass,
    op: WindowOp,
    kernel_value: &mut impl FnMut(&mut Engine<'_>, usize, usize) -> Result<Fx, RunError>,
    weights: &mut Vec<Fx>,
) -> Result<(), RunError> {
    let (aw, ah) = pass.active;
    let (kx_max, ky_max) = pass.kernel;
    let (sx, sy) = pass.stride;
    let cells = (aw * ah) as u64;
    let win = (kx_max * ky_max) as u64;

    if eng.hfsm.second() != SecondState::Init {
        eng.hfsm
            .step(SecondState::NextWindow)
            .expect("HFSM: next window");
    }
    eng.nfu.set_fifo_depths(sx, sy);
    eng.nfu.clear_fifos_v();

    weights.clear();
    for ky in 0..ky_max {
        eng.nfu.clear_fifos_h();
        for kx in 0..kx_max {
            if kx == 0 && ky == 0 {
                eng.hfsm.step(SecondState::Fill).expect("HFSM: fill");
                eng.charge_nb_tile(pass.input_at(0, 0, 0, 0), (aw, ah), (sx, sy))?;
            } else if kx == 0 {
                eng.hfsm.step(SecondState::NextRow).expect("HFSM: next row");
                eng.hfsm.step(SecondState::VMode).expect("HFSM: v-mode");
                if ky < sy {
                    eng.charge_nb_tile(pass.input_at(0, 0, 0, ky), (aw, ah), (sx, sy))?;
                } else {
                    eng.stats.fifo_pops += ((ah - 1) * aw) as u64;
                    eng.charge_nb_row(pass.input_at(0, ah - 1, 0, ky), aw, sx)?;
                }
            } else {
                eng.hfsm.step(SecondState::HMode).expect("HFSM: h-mode");
                if kx < sx {
                    eng.charge_nb_tile(pass.input_at(0, 0, kx, ky), (aw, ah), (sx, sy))?;
                } else {
                    eng.stats.fifo_pops += (ah * (aw - 1)) as u64;
                    eng.charge_nb_col(pass.input_at(aw - 1, 0, kx, ky), ah, sy)?;
                }
            }
            if op == WindowOp::Mac {
                eng.sb.read_broadcast(eng.stats);
                weights.push(kernel_value(eng, kx, ky)?);
            }
        }
    }

    // Per-cycle counters, batched: each of the `win` cycles pushes
    // `cells` values (doubled on the kx == 0 first-column cycles), does
    // one PE op per active cell, and advances the clock.
    eng.stats.fifo_pushes += cells * (ky_max as u64) * (kx_max as u64 + 1);
    match op {
        WindowOp::Mac => {
            eng.stats.pe_muls += cells * win;
            eng.stats.pe_adds += cells * win;
        }
        WindowOp::Max => eng.stats.pe_cmps += cells * win,
        WindowOp::Add => eng.stats.pe_adds += cells * win,
    }
    eng.stats.cycles += win;
    eng.stats.pe_busy_slots += cells * win;
    eng.stats.pe_total_slots += win * eng.cfg.pe_count() as u64;

    // Compute pass: each PE *row* reduces its windows as chunked i64
    // lane partial sums over the kernel offsets (one fused pass through
    // the lane kernel), folded into the SoA accumulator row with a
    // single saturating add — bit-identical to the per-cycle fold by
    // the no-intermediate-saturation argument in [`super::values`].
    let kern = LaneKernel;
    let nbin = eng.nbin;
    let fm = &nbin.contents().expect("charged reads verified the load")[pass.map];
    let mut lanes = mem::take(&mut eng.scratch.sums);
    let base_x0 = pass.block.0 * sx;
    for py in 0..ah {
        let base_y = (pass.block.1 + py) * sy;
        match op {
            WindowOp::Mac => {
                lanes.clear();
                lanes.resize(aw, 0);
                for ky in 0..ky_max {
                    let row = &fm.row(base_y + ky)[base_x0..];
                    for (kx, &k) in weights[ky * kx_max..(ky + 1) * kx_max].iter().enumerate() {
                        kern.shifted_mac(&row[kx..], sx, k, &mut lanes);
                    }
                }
                for (acc, &l) in eng.nfu.acc_row_mut(py, aw).iter_mut().zip(&lanes) {
                    acc.add_raw(l);
                }
            }
            WindowOp::Max => {
                let cmps = eng.nfu.cmp_row_mut(py, aw);
                for ky in 0..ky_max {
                    let row = &fm.row(base_y + ky)[base_x0..];
                    for kx in 0..kx_max {
                        kern.shifted_max(&row[kx..], sx, cmps);
                    }
                }
            }
            WindowOp::Add => {
                lanes.clear();
                lanes.resize(aw, 0);
                for ky in 0..ky_max {
                    let row = &fm.row(base_y + ky)[base_x0..];
                    for kx in 0..kx_max {
                        kern.shifted_sum(&row[kx..], sx, &mut lanes);
                    }
                }
                for (acc, &l) in eng.nfu.acc_row_mut(py, aw).iter_mut().zip(&lanes) {
                    acc.add_raw(sum_to_raw(l));
                }
            }
        }
    }
    eng.scratch.sums = lanes;

    eng.nfu
        .note_fifo_peaks(kx_max.min(sx) as u32, ky_max.min(sy) as u32);
    eng.nfu.record_fifo_peaks(eng.stats);
    Ok(())
}

/// Enumerates the `Px × Py`-aligned output blocks covering a `w × h`
/// output map, yielding `(origin, active_extent)`.
pub(crate) fn blocks(
    out_dims: (usize, usize),
    pe_dims: (usize, usize),
) -> impl Iterator<Item = ((usize, usize), (usize, usize))> {
    let (w, h) = out_dims;
    let (px, py) = pe_dims;
    let bx = w.div_ceil(px);
    let by = h.div_ceil(py);
    (0..by).flat_map(move |j| {
        (0..bx).map(move |i| {
            let origin = (i * px, j * py);
            let active = ((w - origin.0).min(px), (h - origin.1).min(py));
            (origin, active)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_the_output() {
        let all: Vec<_> = blocks((10, 10), (8, 8)).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], ((0, 0), (8, 8)));
        assert_eq!(all[1], ((8, 0), (2, 8)));
        assert_eq!(all[3], ((8, 8), (2, 2)));
        let covered: usize = all.iter().map(|&(_, (w, h))| w * h).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn blocks_handle_small_maps() {
        let all: Vec<_> = blocks((5, 5), (8, 8)).collect();
        assert_eq!(all, vec![((0, 0), (5, 5))]);
    }

    #[test]
    fn pass_input_coordinates_follow_stride() {
        let p = Pass {
            map: 0,
            block: (2, 1),
            active: (4, 4),
            kernel: (3, 3),
            stride: (2, 2),
        };
        assert_eq!(p.input_at(0, 0, 0, 0), (4, 2));
        assert_eq!(p.input_at(1, 2, 2, 1), (8, 7));
    }
}
