//! The shared sliding-window sweep engine (Fig. 13's dataflow).
//!
//! Convolutional layers and overlapping pooling layers share the same
//! access pattern: a `Px × Py` block of PEs sweeps a `Kx × Ky` window
//! row-major (`kx` fastest); fresh neurons enter at the rightmost PE
//! column (read mode (f)) or the bottom PE row (mode (c)), everything else
//! propagates through the FIFOs. This module implements one *window pass*
//! — one (output block × input map) sweep — exactly as the paper's Fig. 13
//! walkthrough prescribes.

use super::Engine;
use crate::accel::RunError;
use crate::hfsm::SecondState;
use shidiannao_fixed::Fx;

/// What each PE does with the neuron it receives in a sweep cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WindowOp {
    /// Multiply by the broadcast kernel value and accumulate
    /// (convolution).
    Mac,
    /// Compare into the max register (max pooling).
    Max,
    /// Accumulate (average pooling / matrix sums).
    Add,
}

/// Geometry of one window pass.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pass {
    /// Input map index being swept.
    pub map: usize,
    /// Output-block origin in output coordinates `(ox0, oy0)`.
    pub block: (usize, usize),
    /// Active PE extent `(aw, ah)` — fewer than `Px × Py` at map edges.
    pub active: (usize, usize),
    /// Kernel / window `(Kx, Ky)`.
    pub kernel: (usize, usize),
    /// Stride `(Sx, Sy)`.
    pub stride: (usize, usize),
}

impl Pass {
    /// Input-space coordinate PE `(px, py)` needs at kernel offset
    /// `(kx, ky)`.
    #[inline]
    fn input_at(&self, px: usize, py: usize, kx: usize, ky: usize) -> (usize, usize) {
        (
            (self.block.0 + px) * self.stride.0 + kx,
            (self.block.1 + py) * self.stride.1 + ky,
        )
    }
}

/// Runs one window pass, feeding each active PE one neuron per cycle and
/// applying `op`. For [`WindowOp::Mac`], `kernel_value(eng, kx, ky)`
/// supplies the synapse broadcast from SB that cycle (the engine charges
/// the SB read; the closure routes the word through the fault filter).
///
/// Accumulation lives in the PEs.
pub(crate) fn run_pass(
    eng: &mut Engine<'_>,
    pass: Pass,
    op: WindowOp,
    mut kernel_value: impl FnMut(&mut Engine<'_>, usize, usize) -> Result<Fx, RunError>,
) -> Result<(), RunError> {
    let (aw, ah) = pass.active;
    let (kx_max, ky_max) = pass.kernel;
    let (sx, sy) = pass.stride;
    let propagate = eng.cfg.inter_pe_propagation;

    // Window-pass boundary: stale FIFO-V (and FIFO-H) contents from the
    // previous pass are discarded, and the phase ring advances.
    if eng.hfsm.second() != SecondState::Init {
        eng.hfsm
            .step(SecondState::NextWindow)
            .expect("HFSM: next window");
    }
    eng.nfu.set_fifo_depths(sx, sy);
    eng.nfu.clear_fifos_v();

    for ky in 0..ky_max {
        // Kernel-row boundary: FIFO-H keeps only values of the current row.
        eng.nfu.clear_fifos_h();
        for kx in 0..kx_max {
            // Values received this cycle, row-major over the active block.
            let values: Vec<Fx> = if !propagate {
                // Fig. 7 ablation: every PE re-reads from NBin each cycle.
                eng.nb_tile(pass.map, pass.input_at(0, 0, kx, ky), (aw, ah), (sx, sy))?
            } else if kx == 0 && ky == 0 {
                // Fig. 13 cycle #0: full tile fill, read mode (a)/(b)
                // (or (e) when strided).
                eng.hfsm.step(SecondState::Fill).expect("HFSM: fill");
                eng.nb_tile(pass.map, pass.input_at(0, 0, 0, 0), (aw, ah), (sx, sy))?
            } else if kx == 0 {
                // New kernel row (Fig. 13 cycle #3).
                eng.hfsm.step(SecondState::NextRow).expect("HFSM: next row");
                eng.hfsm.step(SecondState::VMode).expect("HFSM: v-mode");
                if ky < sy {
                    // The row below never read this input row within this
                    // window: everyone refills from NBin.
                    eng.nb_tile(pass.map, pass.input_at(0, 0, 0, ky), (aw, ah), (sx, sy))?
                } else {
                    // Upper rows pop the FIFO-V of the PE below; the bottom
                    // active row reads Px neurons from one bank (mode (c)).
                    let mut vals = vec![Fx::ZERO; aw * ah];
                    for py in 0..ah - 1 {
                        for px in 0..aw {
                            vals[py * aw + px] = eng.nfu.propagate_from_below(px, py);
                            eng.stats.fifo_pops += 1;
                        }
                    }
                    let bottom = eng.nb_row(pass.map, pass.input_at(0, ah - 1, 0, ky), aw, sx)?;
                    vals[(ah - 1) * aw..].copy_from_slice(&bottom);
                    vals
                }
            } else {
                // Horizontal step (Fig. 13 cycles #1–#2).
                eng.hfsm.step(SecondState::HMode).expect("HFSM: h-mode");
                if kx < sx {
                    eng.nb_tile(pass.map, pass.input_at(0, 0, kx, ky), (aw, ah), (sx, sy))?
                } else {
                    // Left PEs pop the right neighbour's FIFO-H; the
                    // rightmost active column reads a column (mode (f)).
                    let mut vals = vec![Fx::ZERO; aw * ah];
                    for py in 0..ah {
                        for px in 0..aw - 1 {
                            vals[py * aw + px] = eng.nfu.propagate_from_right(px, py);
                            eng.stats.fifo_pops += 1;
                        }
                    }
                    let right = eng.nb_col(pass.map, pass.input_at(aw - 1, 0, kx, ky), ah, sy)?;
                    for py in 0..ah {
                        vals[py * aw + (aw - 1)] = right[py];
                    }
                    vals
                }
            };

            // Every PE collects its received neuron into FIFO-H; first-
            // column values additionally enter FIFO-V (Fig. 13 legend).
            let k = if op == WindowOp::Mac {
                eng.sb.read_broadcast(eng.stats);
                kernel_value(eng, kx, ky)?
            } else {
                Fx::ZERO
            };
            for py in 0..ah {
                for px in 0..aw {
                    let v = values[py * aw + px];
                    let pe = eng.nfu.pe_mut(px, py);
                    if propagate {
                        pe.push_h(v);
                        eng.stats.fifo_pushes += 1;
                        if kx == 0 {
                            pe.push_v(v);
                            eng.stats.fifo_pushes += 1;
                        }
                    }
                    match op {
                        WindowOp::Mac => {
                            pe.mac(v, k);
                            eng.stats.pe_muls += 1;
                            eng.stats.pe_adds += 1;
                        }
                        WindowOp::Max => {
                            pe.compare(v);
                            eng.stats.pe_cmps += 1;
                        }
                        WindowOp::Add => {
                            pe.add(v);
                            eng.stats.pe_adds += 1;
                        }
                    }
                }
            }
            eng.tick(aw * ah);
        }
    }
    eng.nfu.record_fifo_peaks(eng.stats);
    Ok(())
}

/// Enumerates the `Px × Py`-aligned output blocks covering a `w × h`
/// output map, yielding `(origin, active_extent)`.
pub(crate) fn blocks(
    out_dims: (usize, usize),
    pe_dims: (usize, usize),
) -> impl Iterator<Item = ((usize, usize), (usize, usize))> {
    let (w, h) = out_dims;
    let (px, py) = pe_dims;
    let bx = w.div_ceil(px);
    let by = h.div_ceil(py);
    (0..by).flat_map(move |j| {
        (0..bx).map(move |i| {
            let origin = (i * px, j * py);
            let active = ((w - origin.0).min(px), (h - origin.1).min(py));
            (origin, active)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_the_output() {
        let all: Vec<_> = blocks((10, 10), (8, 8)).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], ((0, 0), (8, 8)));
        assert_eq!(all[1], ((8, 0), (2, 8)));
        assert_eq!(all[3], ((8, 8), (2, 2)));
        let covered: usize = all.iter().map(|&(_, (w, h))| w * h).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn blocks_handle_small_maps() {
        let all: Vec<_> = blocks((5, 5), (8, 8)).collect();
        assert_eq!(all, vec![((0, 0), (5, 5))]);
    }

    #[test]
    fn pass_input_coordinates_follow_stride() {
        let p = Pass {
            map: 0,
            block: (2, 1),
            active: (4, 4),
            kernel: (3, 3),
            stride: (2, 2),
        };
        assert_eq!(p.input_at(0, 0, 0, 0), (4, 2));
        assert_eq!(p.input_at(1, 2, 2, 1), (8, 7));
    }
}
