//! Pooling-layer executor (§8.2, Fig. 14).

use super::window::{blocks, run_pass, Pass};
use super::{Engine, WindowOp};
use crate::accel::RunError;
use core::mem;
use shidiannao_cnn::{Layer, LayerBody, PoolKind};
use shidiannao_fixed::Fx;

/// Executes a pooling layer.
///
/// In the common non-overlapping case (stride = window) "at each cycle,
/// each PE reads an input neuron (row-first and left-first in the pooling
/// window) from NBin (with Read Mode (e)); PEs do not mutually propagate
/// data because there is no data reuse between PEs". Overlapping pooling
/// "can be treated in a way similar to a convolutional layer, except that
/// there is no synapse" — it routes through the shared window sweep with
/// inter-PE propagation.
pub(super) fn run(eng: &mut Engine<'_>, layer: &Layer) -> Result<(), RunError> {
    let LayerBody::Pool {
        window,
        stride,
        kind,
        activation,
        ..
    } = layer.body()
    else {
        unreachable!("pool executor fed a non-pool layer");
    };
    let out_dims = layer.out_dims();
    let in_dims = layer.in_dims();
    let pe_dims = (eng.cfg.pe_cols, eng.cfg.pe_rows);
    let overlapping = stride.0 < window.0 || stride.1 < window.1;

    for m in 0..layer.out_maps() {
        for (origin, active) in blocks(out_dims, pe_dims) {
            // Reset PE state for the new output neurons.
            for py in 0..active.1 {
                for px in 0..active.0 {
                    let mut pe = eng.nfu.pe_mut(px, py);
                    match kind {
                        PoolKind::Max => pe.reset_comparator(),
                        PoolKind::Avg => pe.reset_accumulator(Fx::ZERO),
                    }
                }
            }

            if overlapping {
                run_pass(
                    eng,
                    Pass {
                        map: m,
                        block: origin,
                        active,
                        kernel: *window,
                        stride: *stride,
                    },
                    match kind {
                        PoolKind::Max => WindowOp::Max,
                        PoolKind::Avg => WindowOp::Add,
                    },
                    |_, _, _| Ok(Fx::ZERO),
                )?;
            } else {
                // Fig. 14 flow: one gather per window element, mode (e).
                // The coordinate / lane / value buffers come from the
                // session's scratch arena so the steady-state loop stays
                // allocation-free.
                let mut coords = mem::take(&mut eng.scratch.coords);
                let mut lanes = mem::take(&mut eng.scratch.lanes);
                let mut vals = mem::take(&mut eng.scratch.values);
                let result = gather_windows(
                    eng,
                    m,
                    origin,
                    active,
                    *window,
                    *stride,
                    in_dims,
                    *kind,
                    &mut coords,
                    &mut lanes,
                    &mut vals,
                );
                eng.scratch.coords = coords;
                eng.scratch.lanes = lanes;
                eng.scratch.values = vals;
                result?;
            }

            // Epilogue: read out, divide (average) through the ALU, apply
            // the optional activation, flush the block.
            let mut vals = mem::take(&mut eng.scratch.vals);
            vals.clear();
            for py in 0..active.1 {
                for px in 0..active.0 {
                    let v = match kind {
                        PoolKind::Max => eng.nfu.pe(px, py).comparator(),
                        PoolKind::Avg => {
                            let x0 = (origin.0 + px) * stride.0;
                            let y0 = (origin.1 + py) * stride.1;
                            let w = (x0 + window.0).min(in_dims.0) - x0;
                            let h = (y0 + window.1).min(in_dims.1) - y0;
                            eng.nfu.pe(px, py).accumulator_mean(w * h)
                        }
                    };
                    vals.push(v);
                }
            }
            if *kind == PoolKind::Avg {
                // The mean read-out is the ALU division of formula (2)'s
                // average variant; charge the ops (latency overlaps the
                // next block, as for conv epilogues).
                eng.stats.alu_divs += vals.len() as u64;
            }
            let _ = eng.alu.activate(&mut vals, *activation, eng.stats);
            eng.tick_idle(1);
            eng.nbout.write_block(m, origin, active, &vals, eng.stats);
            eng.scratch.vals = vals;
        }
    }
    Ok(())
}

/// The non-overlapping gather loop, split out so the scratch buffers can
/// be restored even when a gather faults out with `?`.
#[allow(clippy::too_many_arguments)]
fn gather_windows(
    eng: &mut Engine<'_>,
    map: usize,
    origin: (usize, usize),
    active: (usize, usize),
    window: (usize, usize),
    stride: (usize, usize),
    in_dims: (usize, usize),
    kind: PoolKind,
    coords: &mut Vec<(usize, usize)>,
    lanes: &mut Vec<(usize, usize)>,
    vals: &mut Vec<Fx>,
) -> Result<(), RunError> {
    for wy in 0..window.1 {
        for wx in 0..window.0 {
            // PEs whose (ceiling-rounded) window is clipped at the input
            // edge idle on out-of-bounds elements.
            coords.clear();
            lanes.clear();
            for py in 0..active.1 {
                for px in 0..active.0 {
                    let x = (origin.0 + px) * stride.0 + wx;
                    let y = (origin.1 + py) * stride.1 + wy;
                    if x < in_dims.0 && y < in_dims.1 {
                        coords.push((x, y));
                        lanes.push((px, py));
                    }
                }
            }
            eng.nb_gather_into(map, coords, vals)?;
            for (&(px, py), &v) in lanes.iter().zip(vals.iter()) {
                let mut pe = eng.nfu.pe_mut(px, py);
                match kind {
                    PoolKind::Max => {
                        pe.compare(v);
                        eng.stats.pe_cmps += 1;
                    }
                    PoolKind::Avg => {
                        pe.add(v);
                        eng.stats.pe_adds += 1;
                    }
                }
            }
            eng.tick(lanes.len());
        }
    }
    Ok(())
}
