//! The per-event energy model (Table 4, 65 nm).
//!
//! Energy is charged per microarchitectural event counted in
//! [`LayerStats`]: PE operations and idle clocking (NFU), bytes and
//! accesses moved through each SRAM (NBin, NBout, SB, IB). The constants
//! are calibrated so the ten Table 2 benchmarks reproduce Table 4's
//! averaged power (320.10 mW at 1 GHz) and component breakdown (NFU
//! 83.98 %, NBin 11.10 %, NBout 2.06 %, SB 2.11 %, IB 0.74 %); the
//! calibration is asserted by `tests/table4.rs`.

use crate::stats::{LayerStats, RunStats};
use core::fmt;
use shidiannao_faults::SramProtection;

/// Synaptic-weight storage precision (the SB word width).
///
/// The baseline accelerator stores 16-bit Q7.8 weights. The quantized
/// execution modes (`shidiannao-quant`) pack sign-binarized weights as
/// 1-bit or 2-bit SB words and replace the 16×16 multiplier array with
/// XNOR-popcount (1-bit) or two-plane add/sub (2-bit) datapaths. Cycle
/// counts are unchanged — the mesh still retires one MAC-equivalent per
/// PE per cycle — but SB traffic and multiplier energy scale down, which
/// [`EnergyModel::with_weight_precision`] models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// The paper's 16-bit fixed-point weights.
    #[default]
    W16,
    /// 2-bit weights: two sign bit-planes, values `{-3, -1, +1, +3} × α`.
    W2,
    /// 1-bit weights: one sign bit-plane, values `±α`.
    W1,
}

impl WeightPrecision {
    /// SB word width in bits.
    pub fn bits(self) -> u32 {
        match self {
            WeightPrecision::W16 => 16,
            WeightPrecision::W2 => 2,
            WeightPrecision::W1 => 1,
        }
    }

    /// SB per-byte energy scale: packed words move `bits/16` of the
    /// baseline bytes for the same synapse traffic.
    pub fn sb_scale(self) -> f64 {
        f64::from(self.bits()) / 16.0
    }

    /// PE arithmetic energy scale. A 16×16 truncated multiplier is an
    /// array of ~16 partial-product rows; a 1-bit weight reduces it to an
    /// XNOR + popcount slice and a 2-bit weight to two add/sub planes.
    /// The accumulator and FIFOs stay full-width, so the scale is held
    /// conservatively above `bits/16`: 1/8 for 1-bit, 1/4 for 2-bit.
    pub fn pe_scale(self) -> f64 {
        match self {
            WeightPrecision::W16 => 1.0,
            WeightPrecision::W2 => 0.25,
            WeightPrecision::W1 => 0.125,
        }
    }

    /// Stable lowercase label (`w16`/`w2`/`w1`) for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            WeightPrecision::W16 => "w16",
            WeightPrecision::W2 => "w2",
            WeightPrecision::W1 => "w1",
        }
    }
}

/// Per-event energies in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// One busy PE slot (multiplier + adder + FIFO activity).
    pub pe_busy_pj: f64,
    /// One idle PE slot (clock + leakage while the mesh is powered).
    pub pe_idle_pj: f64,
    /// One ALU operation (activation segment evaluation or division).
    pub alu_op_pj: f64,
    /// One byte read from an NB (bank access amortized).
    pub nb_read_byte_pj: f64,
    /// Fixed cost per NB read access (decoder + wordline).
    pub nb_read_access_pj: f64,
    /// One byte written to an NB (writes cost more than reads in these
    /// SRAM macros).
    pub nb_write_byte_pj: f64,
    /// Fixed cost per NB write access.
    pub nb_write_access_pj: f64,
    /// One byte read from SB.
    pub sb_byte_pj: f64,
    /// Fixed cost per SB access.
    pub sb_access_pj: f64,
    /// One byte fetched from IB.
    pub ib_byte_pj: f64,
}

impl EnergyModel {
    /// The calibrated 65 nm model.
    pub fn paper_65nm() -> EnergyModel {
        EnergyModel {
            pe_busy_pj: 4.88,
            pe_idle_pj: 0.553,
            alu_op_pj: 2.46,
            nb_read_byte_pj: 1.91,
            nb_read_access_pj: 4.92,
            nb_write_byte_pj: 2.34,
            nb_write_access_pj: 6.03,
            sb_byte_pj: 0.66,
            sb_access_pj: 0.46,
            ib_byte_pj: 23.8,
        }
    }

    /// Derives a model with SRAM protection overheads applied: per-byte
    /// SRAM energies scale with the check-bit storage overhead (parity
    /// 17/16, SECDED 22/16 for 16-bit words) and per-access energies with
    /// the encode/decode logic overhead. `SramProtection::None` returns
    /// the model unchanged, so the Table 4 calibration is unaffected.
    pub fn with_sram_protection(&self, protection: SramProtection) -> EnergyModel {
        let storage = protection.storage_overhead();
        let logic = protection.logic_overhead();
        EnergyModel {
            pe_busy_pj: self.pe_busy_pj,
            pe_idle_pj: self.pe_idle_pj,
            alu_op_pj: self.alu_op_pj,
            nb_read_byte_pj: self.nb_read_byte_pj * storage,
            nb_read_access_pj: self.nb_read_access_pj * logic,
            nb_write_byte_pj: self.nb_write_byte_pj * storage,
            nb_write_access_pj: self.nb_write_access_pj * logic,
            sb_byte_pj: self.sb_byte_pj * storage,
            sb_access_pj: self.sb_access_pj * logic,
            ib_byte_pj: self.ib_byte_pj * storage,
        }
    }

    /// Derives a model with per-precision scaling applied: SB per-byte
    /// energy scales with the packed word width
    /// ([`WeightPrecision::sb_scale`]) and PE arithmetic energy with the
    /// reduced multiplier datapath ([`WeightPrecision::pe_scale`]).
    /// Neuron buffers, the ALU, and the IB are unchanged — activations
    /// and instructions stay 16-bit/61-bit. `WeightPrecision::W16`
    /// returns the model unchanged, so the Table 4 calibration is
    /// unaffected. Composes with
    /// [`with_sram_protection`](EnergyModel::with_sram_protection):
    /// check bits protect the packed words.
    pub fn with_weight_precision(&self, precision: WeightPrecision) -> EnergyModel {
        let pe = precision.pe_scale();
        let sb = precision.sb_scale();
        EnergyModel {
            pe_busy_pj: self.pe_busy_pj * pe,
            pe_idle_pj: self.pe_idle_pj,
            alu_op_pj: self.alu_op_pj,
            sb_byte_pj: self.sb_byte_pj * sb,
            ..*self
        }
    }

    /// Charges one layer's (or an aggregate's) events.
    pub fn charge(&self, s: &LayerStats) -> EnergyReport {
        let pe_ops = s.pe_muls + s.pe_adds + s.pe_cmps;
        // Busy slots already count one op per slot; multi-op cycles (MAC =
        // mul + add) charge the extra op at half weight.
        let extra_ops = pe_ops.saturating_sub(s.pe_busy_slots);
        let idle = s.pe_total_slots.saturating_sub(s.pe_busy_slots);
        let nfu = self.pe_busy_pj * s.pe_busy_slots as f64
            + 0.5 * self.pe_busy_pj * extra_ops as f64
            + self.pe_idle_pj * idle as f64
            + self.alu_op_pj * (s.alu_acts + s.alu_divs) as f64;
        let nb = |t: &crate::stats::BufferTraffic| {
            self.nb_read_byte_pj * t.read_bytes as f64
                + self.nb_read_access_pj * t.read_accesses as f64
                + self.nb_write_byte_pj * t.write_bytes as f64
                + self.nb_write_access_pj * t.write_accesses as f64
        };
        let nbin = nb(&s.nbin);
        let nbout = nb(&s.nbout);
        let sb = self.sb_byte_pj * s.sb.total_bytes() as f64
            + self.sb_access_pj * (s.sb.read_accesses + s.sb.write_accesses) as f64;
        let ib = self.ib_byte_pj * s.ib.total_bytes() as f64;
        EnergyReport {
            nfu_nj: nfu / 1000.0,
            nbin_nj: nbin / 1000.0,
            nbout_nj: nbout / 1000.0,
            sb_nj: sb / 1000.0,
            ib_nj: ib / 1000.0,
        }
    }

    /// Charges a whole run.
    pub fn charge_run(&self, stats: &RunStats) -> EnergyReport {
        self.charge(&stats.total())
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::paper_65nm()
    }
}

/// Per-component energy of one execution, in nanojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// PE mesh + ALU.
    pub nfu_nj: f64,
    /// Input-neuron buffer.
    pub nbin_nj: f64,
    /// Output-neuron buffer.
    pub nbout_nj: f64,
    /// Synapse buffer.
    pub sb_nj: f64,
    /// Instruction buffer.
    pub ib_nj: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.nfu_nj + self.nbin_nj + self.nbout_nj + self.sb_nj + self.ib_nj
    }

    /// Component shares in Table 4 order (NFU, NBin, NBout, SB, IB), as
    /// fractions of the total.
    pub fn shares(&self) -> [f64; 5] {
        let t = self.total_nj();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.nfu_nj / t,
            self.nbin_nj / t,
            self.nbout_nj / t,
            self.sb_nj / t,
            self.ib_nj / t,
        ]
    }

    /// Average power in milliwatts over an execution of `cycles` at
    /// `frequency_ghz`.
    pub fn average_power_mw(&self, cycles: u64, frequency_ghz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / (frequency_ghz * 1e9);
        self.total_nj() * 1e-9 / seconds * 1e3
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            nfu_nj: self.nfu_nj + other.nfu_nj,
            nbin_nj: self.nbin_nj + other.nbin_nj,
            nbout_nj: self.nbout_nj + other.nbout_nj,
            sb_nj: self.sb_nj + other.sb_nj,
            ib_nj: self.ib_nj + other.ib_nj,
        }
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} nJ (NFU {:.2}, NBin {:.2}, NBout {:.2}, SB {:.2}, IB {:.2})",
            self.total_nj(),
            self.nfu_nj,
            self.nbin_nj,
            self.nbout_nj,
            self.sb_nj,
            self.ib_nj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> LayerStats {
        let mut s = LayerStats::new("C1");
        s.cycles = 1000;
        s.pe_busy_slots = 50_000;
        s.pe_total_slots = 64_000;
        s.pe_muls = 50_000;
        s.pe_adds = 50_000;
        s.alu_acts = 800;
        s.nbin.read(8_000);
        s.nbout.write(2_000);
        s.sb.read(2_000);
        s.ib.read(80);
        s
    }

    #[test]
    fn charge_is_positive_and_additive() {
        let m = EnergyModel::paper_65nm();
        let r = m.charge(&sample_stats());
        assert!(r.total_nj() > 0.0);
        let merged = r.merge(&r);
        assert!((merged.total_nj() - 2.0 * r.total_nj()).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let m = EnergyModel::paper_65nm();
        let r = m.charge(&sample_stats());
        let s: f64 = r.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(EnergyReport::default().shares(), [0.0; 5]);
    }

    #[test]
    fn power_conversion() {
        let r = EnergyReport {
            nfu_nj: 320.0,
            ..EnergyReport::default()
        };
        // 320 nJ over 1000 cycles at 1 GHz = 320 mW.
        assert!((r.average_power_mw(1000, 1.0) - 320.0).abs() < 1e-9);
        assert_eq!(r.average_power_mw(0, 1.0), 0.0);
    }

    #[test]
    fn idle_pes_cost_less_than_busy() {
        let m = EnergyModel::paper_65nm();
        assert!(m.pe_idle_pj < m.pe_busy_pj);
        let mut busy = LayerStats::new("b");
        busy.pe_busy_slots = 1000;
        busy.pe_total_slots = 1000;
        let mut idle = LayerStats::new("i");
        idle.pe_total_slots = 1000;
        assert!(m.charge(&busy).nfu_nj > m.charge(&idle).nfu_nj);
    }

    #[test]
    fn sram_protection_scales_sram_energy_only() {
        let base = EnergyModel::paper_65nm();
        assert_eq!(base.with_sram_protection(SramProtection::None), base);
        let secded = base.with_sram_protection(SramProtection::Secded);
        assert_eq!(secded.pe_busy_pj, base.pe_busy_pj);
        assert_eq!(secded.alu_op_pj, base.alu_op_pj);
        assert!((secded.nb_read_byte_pj / base.nb_read_byte_pj - 22.0 / 16.0).abs() < 1e-12);
        assert!((secded.sb_access_pj / base.sb_access_pj - 1.25).abs() < 1e-12);
        let parity = base.with_sram_protection(SramProtection::Parity);
        assert!(parity.nb_read_byte_pj < secded.nb_read_byte_pj);
        assert!(parity.nb_read_byte_pj > base.nb_read_byte_pj);
    }

    #[test]
    fn weight_precision_scales_sb_and_pe_only() {
        let base = EnergyModel::paper_65nm();
        assert_eq!(base.with_weight_precision(WeightPrecision::W16), base);
        let w1 = base.with_weight_precision(WeightPrecision::W1);
        assert!((w1.sb_byte_pj / base.sb_byte_pj - 1.0 / 16.0).abs() < 1e-12);
        assert!((w1.pe_busy_pj / base.pe_busy_pj - 0.125).abs() < 1e-12);
        assert_eq!(w1.nb_read_byte_pj, base.nb_read_byte_pj);
        assert_eq!(w1.alu_op_pj, base.alu_op_pj);
        assert_eq!(w1.ib_byte_pj, base.ib_byte_pj);
        assert_eq!(w1.pe_idle_pj, base.pe_idle_pj);
        let w2 = base.with_weight_precision(WeightPrecision::W2);
        assert!(w2.sb_byte_pj > w1.sb_byte_pj && w2.sb_byte_pj < base.sb_byte_pj);
        assert!(w2.pe_busy_pj > w1.pe_busy_pj && w2.pe_busy_pj < base.pe_busy_pj);
        // A quantized charge is strictly cheaper on a busy layer.
        let s = sample_stats();
        assert!(w1.charge(&s).total_nj() < base.charge(&s).total_nj());
        // Precision and protection scaling compose.
        let both = base
            .with_weight_precision(WeightPrecision::W1)
            .with_sram_protection(SramProtection::Parity);
        assert!(both.sb_byte_pj > w1.sb_byte_pj);
    }

    #[test]
    fn precision_labels_and_bits() {
        assert_eq!(WeightPrecision::W16.bits(), 16);
        assert_eq!(WeightPrecision::W2.bits(), 2);
        assert_eq!(WeightPrecision::W1.bits(), 1);
        assert_eq!(WeightPrecision::W1.label(), "w1");
        assert_eq!(WeightPrecision::default(), WeightPrecision::W16);
    }

    #[test]
    fn display_lists_components() {
        let m = EnergyModel::paper_65nm();
        let s = m.charge(&sample_stats()).to_string();
        assert!(s.contains("NFU"));
        assert!(s.contains("IB"));
    }
}
