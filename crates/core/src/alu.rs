//! The arithmetic logic unit (§5.2): activations via piecewise-linear
//! interpolation, divisions, and square roots.

use crate::stats::LayerStats;
use shidiannao_cnn::Activation;
use shidiannao_fixed::{Fx, Pla};

/// The lightweight ALU complementing the PE mesh.
///
/// It holds the pre-loaded PLA register files for `tanh`, `sigmoid`, and
/// `√x` (the LCN decomposition needs a root, §8.4), a fixed-point divider,
/// and `lanes` parallel 16-bit operators — the model drains the `Px`-wide
/// output register array at one value per lane per cycle.
#[derive(Clone, Debug)]
pub struct Alu {
    lanes: usize,
    tanh: Pla,
    sigmoid: Pla,
    sqrt: Pla,
}

impl Alu {
    /// Creates an ALU with the given lane count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Alu {
        assert!(lanes > 0, "ALU needs at least one lane");
        Alu {
            lanes,
            tanh: Pla::tanh(),
            sigmoid: Pla::sigmoid(),
            sqrt: Pla::from_fn(|x| x.max(0.0).sqrt(), 0.0, 127.0),
        }
    }

    /// Lane count.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Applies an activation in place to a batch of PE results, charging
    /// ALU ops and returning the cycles consumed (`⌈n / lanes⌉`, zero for
    /// [`Activation::None`]).
    pub fn activate(
        &self,
        values: &mut [Fx],
        activation: Activation,
        stats: &mut LayerStats,
    ) -> u64 {
        let pla = match activation {
            Activation::None => return 0,
            Activation::Tanh => &self.tanh,
            Activation::Sigmoid => &self.sigmoid,
        };
        for v in values.iter_mut() {
            *v = pla.eval(*v);
        }
        stats.alu_acts += values.len() as u64;
        self.cycles_for(values.len())
    }

    /// Divides each value by `divisor` in place, charging ALU divisions
    /// and returning the cycles consumed.
    pub fn divide(&self, values: &mut [Fx], divisor: Fx, stats: &mut LayerStats) -> u64 {
        for v in values.iter_mut() {
            *v = *v / divisor;
        }
        stats.alu_divs += values.len() as u64;
        self.cycles_for(values.len())
    }

    /// Element-wise division `a / b` in place, charging ALU divisions and
    /// returning the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn divide_elementwise(
        &self,
        values: &mut [Fx],
        divisors: &[Fx],
        stats: &mut LayerStats,
    ) -> u64 {
        assert_eq!(values.len(), divisors.len(), "divisor batch mismatch");
        for (v, d) in values.iter_mut().zip(divisors) {
            *v = *v / *d;
        }
        stats.alu_divs += values.len() as u64;
        self.cycles_for(values.len())
    }

    /// Square root via the PLA, in place; charges activation ops.
    pub fn sqrt(&self, values: &mut [Fx], stats: &mut LayerStats) -> u64 {
        for v in values.iter_mut() {
            *v = self.sqrt.eval(*v);
        }
        stats.alu_acts += values.len() as u64;
        self.cycles_for(values.len())
    }

    /// Cycles to stream `n` values through the lanes.
    #[inline]
    pub fn cycles_for(&self, n: usize) -> u64 {
        n.div_ceil(self.lanes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_matches_pla_tables() {
        let alu = Alu::new(8);
        let mut v = [Fx::from_f32(0.5)];
        let mut s = LayerStats::new("t");
        let cycles = alu.activate(&mut v, Activation::Tanh, &mut s);
        assert_eq!(cycles, 1);
        assert_eq!(v[0], Pla::tanh().eval(Fx::from_f32(0.5)));
        assert_eq!(s.alu_acts, 1);
    }

    #[test]
    fn none_activation_is_free() {
        let alu = Alu::new(8);
        let mut v = [Fx::ONE; 64];
        let mut s = LayerStats::new("t");
        assert_eq!(alu.activate(&mut v, Activation::None, &mut s), 0);
        assert_eq!(s.alu_acts, 0);
        assert!(v.iter().all(|&x| x == Fx::ONE));
    }

    #[test]
    fn lane_count_sets_throughput() {
        let alu = Alu::new(8);
        assert_eq!(alu.cycles_for(64), 8);
        assert_eq!(alu.cycles_for(65), 9);
        assert_eq!(alu.cycles_for(0), 0);
        assert_eq!(alu.lanes(), 8);
    }

    #[test]
    fn divide_by_scalar_and_elementwise() {
        let alu = Alu::new(4);
        let mut s = LayerStats::new("t");
        let mut v = [Fx::from_int(6), Fx::from_int(9)];
        let cycles = alu.divide(&mut v, Fx::from_int(3), &mut s);
        assert_eq!(v, [Fx::from_int(2), Fx::from_int(3)]);
        assert_eq!(cycles, 1);
        let mut w = [Fx::from_int(8)];
        alu.divide_elementwise(&mut w, &[Fx::from_int(2)], &mut s);
        assert_eq!(w, [Fx::from_int(4)]);
        assert_eq!(s.alu_divs, 3);
    }

    #[test]
    fn sqrt_tracks_reference() {
        let alu = Alu::new(1);
        let mut s = LayerStats::new("t");
        let mut v = [Fx::from_int(9)];
        alu.sqrt(&mut v, &mut s);
        assert!((v[0].to_f32() - 3.0).abs() < 0.35, "sqrt(9) ≈ {}", v[0]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Alu::new(0);
    }
}
