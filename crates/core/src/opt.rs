//! The schedule optimizer: post-processes a recorded
//! [`NetworkSchedule`] with validated, per-pass-toggleable passes that
//! shrink the replay stream and re-cost the modeled cycles/energy —
//! without changing a single output bit (DESIGN.md §3i).
//!
//! The recording in [`crate::schedule`] is a *verbatim* transcript of
//! the live HFSM decode: every NB word delivery, every SB broadcast,
//! every per-block drain cycle. The live decoder is deliberately naive
//! (it mirrors the paper's control path), so the transcript carries
//! slack a post-pass can reclaim:
//!
//! * **`nb_dedup`** — redundant NB delivery elimination. Overlapping
//!   windows re-read the same NBin word up to `kx·ky` times; the
//!   inter-PE FIFOs exist precisely so re-reads can be served from
//!   PE-side registers. The pass clamps every [`ReadRec`] multiplicity
//!   to 1 and removes the re-delivered bytes from `nbin.read_bytes`.
//!   Legal: fault decisions are pure in `(seed, site, layer, address)`,
//!   so the patch/abort *sets* a plan resolves against the schedule are
//!   functions of the unique address set alone — identical before and
//!   after. Only the fault-*counter* deltas scale down with the
//!   multiplicities, exactly matching a datapath that physically reads
//!   each word once.
//! * **`mode_select`** — NB read-mode re-selection. The recorded
//!   request mix is whatever the decoder happened to issue; the pass
//!   re-covers the layer's unique address set with the cheapest legal
//!   mix: full `Px×Py` tile reads (modes (a)/(b), split by the tile
//!   origin's bank-group parity) over each input map's bounding box for
//!   spatial layers, and mode (c) row bursts of up to `Px` consecutive
//!   words for flat (classifier) address streams. Applied only when it
//!   issues strictly fewer requests than the recording.
//! * **`sb_coalesce`** — SB dedup + burst coalescing. Each unique SB
//!   word is fetched once (conv re-broadcasts are served from PE-local
//!   weight registers), and adjacent addresses — consecutive `kx`
//!   within a kernel row, consecutive classifier slots — merge into
//!   bursts of up to `pe_count` words per request. Bias broadcast words
//!   stay single-word requests.
//! * **`fifo_fold`** — FIFO-peak-aware drain folding. Every output
//!   block (conv/pool) or PE group (fc) ends in a one-cycle all-idle
//!   flush (`tick_idle(1)` in the live executors) while the ALU drains.
//!   Consecutive blocks can overlap that drain with the next block's
//!   first fill cycle: at the flush the inter-PE FIFOs are at their
//!   recorded steady occupancy, and the next block's prologue re-creates
//!   exactly that state, so the overlap cannot push any FIFO past its
//!   recorded peak. The pass folds `blocks − 1` flush cycles per layer
//!   — but only when the recorded peaks fit the layer's §5.1 sizing
//!   bound (the window extent), which is what makes the overlap legal.
//!
//! Every pass only ever *decreases* counters (each is clamped to the
//! recording when its re-cover would not win), and the energy model is
//! linear with positive coefficients in bytes/accesses/cycles/slots, so
//! optimized modeled energy never increases either. Outputs are
//! untouched by construction: the passes rewrite *costs and the fault
//! filter's multiplicities*, never the value-producing arithmetic. The
//! one arithmetic-adjacent change — the whole-output-row replay bodies
//! enabled via `LayerSchedule::row_lanes` — re-associates exact integer
//! adds only (see `exec/replay.rs`), which the existing multi-path
//! bit-identity certificate checks end to end.

use crate::config::AcceleratorConfig;
use crate::energy::EnergyModel;
use crate::schedule::{LayerSchedule, NetworkSchedule};
use crate::stats::ReadMode;
use shidiannao_cnn::{Layer, LayerBody, Network};
use std::collections::HashMap;

/// Per-pass toggles for [`optimize`]. All passes default to on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Clamp redundant NB word deliveries (served from PE-side state).
    pub nb_dedup: bool,
    /// Re-cover NB address sets with the cheapest read-mode mix.
    pub mode_select: bool,
    /// Deduplicate + burst-coalesce adjacent SB requests.
    pub sb_coalesce: bool,
    /// Fold per-block drain cycles into the next block's fill.
    pub fifo_fold: bool,
    /// Arm the Load phase for cross-frame delta loading: sessions over
    /// this prepared network may replace the recorded full-input stream
    /// with a delta of only dirty input rows against caller-held
    /// [`NbResidency`](crate::NbResidency) state
    /// ([`Session::infer_delta`](crate::Session::infer_delta)). Unlike
    /// the four schedule-rewrite passes this one touches no recorded
    /// layer — the Load phase is synthesized, not recorded — so it does
    /// not count toward [`OptConfig::any`].
    pub delta_load: bool,
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            nb_dedup: true,
            mode_select: true,
            sb_coalesce: true,
            fifo_fold: true,
            delta_load: true,
        }
    }
}

impl OptConfig {
    /// Every pass disabled — `optimize` returns a verbatim copy.
    pub fn none() -> OptConfig {
        OptConfig {
            nb_dedup: false,
            mode_select: false,
            sb_coalesce: false,
            fifo_fold: false,
            delta_load: false,
        }
    }

    /// `true` when at least one schedule-rewrite pass is enabled
    /// (`delta_load` is a load-phase capability, not a rewrite).
    pub fn any(&self) -> bool {
        self.nb_dedup || self.mode_select || self.sb_coalesce || self.fifo_fold
    }
}

/// What the optimizer did to a schedule: per-pass elimination counters
/// plus the modeled-cost deltas, summed over every replayable layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OptReport {
    /// Redundant NB word deliveries eliminated (`nb_dedup`: Σ mult−1).
    pub nb_reads_eliminated: u64,
    /// NB read requests removed by re-covering with cheaper modes
    /// (`mode_select`: recorded accesses − optimized accesses).
    pub nb_modes_reselected: u64,
    /// SB bytes removed by dedup (`sb_coalesce`).
    pub sb_bytes_coalesced: u64,
    /// SB read requests removed by dedup + burst merging (`sb_coalesce`).
    pub sb_accesses_coalesced: u64,
    /// Modeled cycles folded out of the schedule (`fifo_fold`).
    pub cycles_saved: u64,
    /// Modeled energy delta over the replayable layers, in nJ (recorded
    /// charge − optimized charge under the prepared network's model).
    pub energy_saved_nj: f64,
    /// Replayable layers any pass changed.
    pub layers_optimized: usize,
    /// The `delta_load` pass armed the Load phase for cross-frame NBin
    /// residency (its savings accrue per run, in the sessions'
    /// [`DeltaLoad`](crate::DeltaLoad) reports, not here).
    pub delta_load: bool,
}

impl OptReport {
    /// Total accesses eliminated across all passes (the headline the
    /// bench summary line prints).
    pub fn accesses_eliminated(&self) -> u64 {
        self.nb_reads_eliminated + self.nb_modes_reselected + self.sb_accesses_coalesced
    }
}

/// Optimizes a recorded schedule. Non-replayable layers (which
/// live-decode every run) are copied verbatim; each enabled pass rewrites
/// the replayable layers' cost model and replay stream as documented on
/// [the module](self), never their outputs.
pub fn optimize(
    recorded: &NetworkSchedule,
    network: &Network,
    cfg: &AcceleratorConfig,
    model: &EnergyModel,
    opt: &OptConfig,
) -> (NetworkSchedule, OptReport) {
    let mut report = OptReport {
        delta_load: opt.delta_load,
        ..OptReport::default()
    };
    let layers = recorded
        .layers()
        .iter()
        .zip(network.layers())
        .map(|(sched, layer)| optimize_layer(sched, layer, cfg, model, opt, &mut report))
        .collect();
    (NetworkSchedule::from_layers(layers), report)
}

fn optimize_layer(
    sched: &LayerSchedule,
    layer: &Layer,
    cfg: &AcceleratorConfig,
    model: &EnergyModel,
    opt: &OptConfig,
    report: &mut OptReport,
) -> LayerSchedule {
    if !sched.replayable() || !opt.any() {
        return sched.clone();
    }
    let mut out = sched.clone();
    // Host-level stream shrink: conv/pool replay bodies run whole output
    // rows per lane-kernel call instead of Px-wide block slices.
    out.row_lanes = matches!(
        layer.body(),
        LayerBody::Conv { .. } | LayerBody::Pool { .. }
    );
    if opt.nb_dedup {
        nb_dedup(&mut out, report);
    }
    if opt.mode_select {
        mode_select(&mut out, cfg, report);
    }
    if opt.sb_coalesce {
        sb_coalesce(&mut out, cfg, report);
    }
    if opt.fifo_fold {
        fifo_fold(&mut out, layer, cfg, report);
    }
    if out.stats != sched.stats {
        report.layers_optimized += 1;
        report.energy_saved_nj +=
            model.charge(&sched.stats).total_nj() - model.charge(&out.stats).total_nj();
    }
    out
}

/// Pass 1: clamp every NB word's delivery multiplicity to one.
fn nb_dedup(out: &mut LayerSchedule, report: &mut OptReport) {
    let mut redundant: u64 = 0;
    for r in &mut out.nb_reads {
        redundant += (r.mult - 1) as u64;
        r.mult = 1;
    }
    if redundant > 0 {
        // Every delivery moved one 16-bit word; the recording charged
        // each of them (the recorder listens on the per-word filter).
        out.stats.nbin.read_bytes = out.stats.nbin.read_bytes.saturating_sub(2 * redundant);
        report.nb_reads_eliminated += redundant;
    }
}

/// Pass 2: re-cover the unique NB address set with the cheapest request
/// mix, clamped to the recording when the re-cover would not win.
fn mode_select(out: &mut LayerSchedule, cfg: &AcceleratorConfig, report: &mut OptReport) {
    let recorded = out.stats.nbin.read_accesses;
    if recorded == 0 || out.nb_reads.is_empty() {
        return;
    }
    let (px, py) = (cfg.pe_cols as u64, cfg.pe_rows as u64);
    let mut mix = [0u64; 6];
    if out.nb_flat {
        // Flat (classifier) stream: maximal runs of consecutive flat
        // indices, each covered by mode (c) bursts of up to Px words.
        let mut flats: Vec<u64> = out.nb_reads.iter().map(|r| r.addr[0]).collect();
        flats.sort_unstable();
        let mut i = 0;
        while i < flats.len() {
            let start = i;
            while i + 1 < flats.len() && flats[i + 1] == flats[i] + 1 {
                i += 1;
            }
            let run = (i - start + 1) as u64;
            mix[ReadMode::C as usize] += run.div_ceil(px);
            i += 1;
        }
    } else {
        // Spatial stream: per input map, cover the touched bounding box
        // with full Px×Py tile reads; each tile is a mode (a) or (b)
        // request by its origin column's bank-group parity.
        let mut boxes: HashMap<u64, (u64, u64, u64, u64)> = HashMap::new();
        for r in &out.nb_reads {
            let (m, x, y) = (r.addr[0], r.addr[1], r.addr[2]);
            let b = boxes.entry(m).or_insert((x, x, y, y));
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        for &(x0, x1, y0, y1) in boxes.values() {
            let tiles_y = (y1 - y0 + 1).div_ceil(py);
            for tx in 0..(x1 - x0 + 1).div_ceil(px) {
                let group = ((x0 + tx * px) / px) % 2;
                let mode = if group == 0 { ReadMode::A } else { ReadMode::B };
                mix[mode as usize] += tiles_y;
            }
        }
    }
    let total: u64 = mix.iter().sum();
    if total < recorded {
        report.nb_modes_reselected += recorded - total;
        out.stats.nbin.read_accesses = total;
        out.stats.reads_by_mode = mix;
    }
}

/// `true` when two sorted SB addresses are burst-adjacent: consecutive
/// `kx` within one conv kernel row, or consecutive slots within one
/// classifier weight row. Bias broadcast words (`addr[1] == MAX`) stay
/// single-word requests.
fn sb_adjacent(a: [u64; 3], b: [u64; 3]) -> bool {
    if a[1] == u64::MAX || b[1] == u64::MAX {
        return false;
    }
    if a[2] == u64::MAX && b[2] == u64::MAX {
        a[0] == b[0] && b[1] == a[1].wrapping_add(1)
    } else {
        a[0] == b[0] && a[1] == b[1] && b[2] == a[2].wrapping_add(1)
    }
}

/// Pass 3: fetch each unique SB word once and merge adjacent addresses
/// into bursts of up to `pe_count` words per request.
fn sb_coalesce(out: &mut LayerSchedule, cfg: &AcceleratorConfig, report: &mut OptReport) {
    if out.sb_reads.is_empty() {
        return;
    }
    let mut rebroadcast: u64 = 0;
    for r in &mut out.sb_reads {
        rebroadcast += (r.mult - 1) as u64;
        r.mult = 1;
    }
    if rebroadcast > 0 {
        let bytes = 2 * rebroadcast;
        out.stats.sb.read_bytes = out.stats.sb.read_bytes.saturating_sub(bytes);
        report.sb_bytes_coalesced += bytes;
    }
    // `sb_reads` is sorted by address (the recorder's invariant), so
    // maximal adjacent runs are contiguous.
    let burst = cfg.pe_count() as u64;
    let mut bursts: u64 = 0;
    let mut i = 0;
    while i < out.sb_reads.len() {
        let start = i;
        while i + 1 < out.sb_reads.len()
            && sb_adjacent(out.sb_reads[i].addr, out.sb_reads[i + 1].addr)
        {
            i += 1;
        }
        bursts += ((i - start + 1) as u64).div_ceil(burst);
        i += 1;
    }
    let recorded = out.stats.sb.read_accesses;
    if bursts < recorded {
        report.sb_accesses_coalesced += recorded - bursts;
        out.stats.sb.read_accesses = bursts;
    }
}

/// Pass 4: fold the per-block one-cycle ALU drain into the next block's
/// first fill cycle, when the recorded FIFO peaks make the overlap legal.
fn fifo_fold(
    out: &mut LayerSchedule,
    layer: &Layer,
    cfg: &AcceleratorConfig,
    report: &mut OptReport,
) {
    let (px, py) = (cfg.pe_cols.max(1), cfg.pe_rows.max(1));
    let (ow, oh) = layer.out_dims();
    // Per-layer flush count and the §5.1 FIFO sizing bound the recorded
    // peaks must fit for the drain/fill overlap to be legal.
    let (passes, bound) = match layer.body() {
        LayerBody::Conv { kernel, .. } => (
            layer.out_maps() * ow.div_ceil(px) * oh.div_ceil(py),
            (kernel.0, kernel.1),
        ),
        LayerBody::Pool { window, .. } => (
            layer.out_maps() * ow.div_ceil(px) * oh.div_ceil(py),
            (window.0, window.1),
        ),
        LayerBody::Fc { .. } => (layer.out_maps().div_ceil(cfg.pe_count()), (0, 0)),
        // Non-replayable layer kinds never reach the optimizer passes.
        LayerBody::Lrn(_) | LayerBody::Lcn { .. } => return,
    };
    if out.stats.fifo_h_peak > bound.0 || out.stats.fifo_v_peak > bound.1 {
        return;
    }
    let pe = cfg.pe_count() as u64;
    let idle = out
        .stats
        .pe_total_slots
        .saturating_sub(out.stats.pe_busy_slots);
    // Clamp to the counters the fold draws down: each folded flush was
    // one all-idle cycle (`pe_count` idle slots), and the layer keeps at
    // least one cycle.
    let folds = (passes.saturating_sub(1) as u64)
        .min(out.stats.cycles.saturating_sub(1))
        .min(idle / pe.max(1));
    if folds > 0 {
        out.stats.cycles -= folds;
        out.stats.pe_total_slots -= folds * pe;
        report.cycles_saved += folds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ReadRec;
    use crate::stats::LayerStats;

    fn rec(addr: [u64; 3], mult: u32) -> ReadRec {
        ReadRec { addr, mult }
    }

    fn spatial_layer() -> LayerSchedule {
        let mut stats = LayerStats::new("C1");
        stats.cycles = 100;
        stats.pe_busy_slots = 400;
        stats.pe_total_slots = 800;
        stats.nbin.read_accesses = 64;
        stats.nbin.read_bytes = 512;
        stats.reads_by_mode[ReadMode::E as usize] = 64;
        stats.sb.read_accesses = 30;
        stats.sb.read_bytes = 60;
        LayerSchedule {
            stats,
            nb_reads: (0..8)
                .flat_map(|x| (0..8).map(move |y| rec([0, x, y], 4)))
                .collect(),
            sb_reads: (0..25)
                .map(|k| rec([0, 0, ((k / 5) << 32) | (k % 5)], 1))
                .collect(),
            replayable: true,
            ..LayerSchedule::default()
        }
    }

    #[test]
    fn nb_dedup_clamps_multiplicities_and_bytes() {
        let mut l = spatial_layer();
        let mut r = OptReport::default();
        nb_dedup(&mut l, &mut r);
        assert!(l.nb_reads.iter().all(|x| x.mult == 1));
        assert_eq!(r.nb_reads_eliminated, 64 * 3);
        assert_eq!(l.stats.nbin.read_bytes, 512 - 2 * 64 * 3);
    }

    #[test]
    fn mode_select_recovers_with_tiles_and_keeps_sums_coherent() {
        let mut l = spatial_layer();
        let mut r = OptReport::default();
        let cfg = AcceleratorConfig::paper(); // 8×8 PEs
        mode_select(&mut l, &cfg, &mut r);
        // One 8×8 bounding box → a single mode (a) tile read.
        assert_eq!(l.stats.nbin.read_accesses, 1);
        assert_eq!(l.stats.reads_by_mode[ReadMode::A as usize], 1);
        assert_eq!(
            l.stats.reads_by_mode.iter().sum::<u64>(),
            l.stats.nbin.read_accesses
        );
        assert_eq!(r.nb_modes_reselected, 63);
    }

    #[test]
    fn mode_select_never_increases_requests() {
        let mut l = spatial_layer();
        l.stats.nbin.read_accesses = 1; // already optimal
        l.stats.reads_by_mode = [0; 6];
        l.stats.reads_by_mode[ReadMode::A as usize] = 1;
        let before = l.stats.clone();
        let mut r = OptReport::default();
        mode_select(&mut l, &AcceleratorConfig::paper(), &mut r);
        assert_eq!(l.stats, before);
        assert_eq!(r.nb_modes_reselected, 0);
    }

    #[test]
    fn sb_coalesce_bursts_kernel_rows_and_isolates_biases() {
        let mut l = spatial_layer();
        l.sb_reads.push(rec([0, u64::MAX, 0], 3)); // bias word
        l.sb_reads.sort_unstable_by_key(|a| a.addr);
        l.stats.sb.read_accesses = 28;
        let mut r = OptReport::default();
        sb_coalesce(&mut l, &AcceleratorConfig::paper(), &mut r);
        // Five kernel rows of five (each a run ≤ 64-word burst) + bias.
        assert_eq!(l.stats.sb.read_accesses, 6);
        assert_eq!(r.sb_accesses_coalesced, 22);
        assert_eq!(r.sb_bytes_coalesced, 2 * 2); // the bias word's re-reads
    }

    #[test]
    fn flat_runs_coalesce_to_mode_c() {
        let mut l = spatial_layer();
        l.nb_flat = true;
        l.nb_reads = (0..20).map(|f| rec([f, 0, 0], 1)).collect();
        l.stats.nbin.read_accesses = 20;
        l.stats.reads_by_mode = [0; 6];
        l.stats.reads_by_mode[ReadMode::D as usize] = 20;
        let mut r = OptReport::default();
        mode_select(&mut l, &AcceleratorConfig::paper(), &mut r);
        // 20 consecutive words → ceil(20/8) = 3 mode (c) bursts.
        assert_eq!(l.stats.nbin.read_accesses, 3);
        assert_eq!(l.stats.reads_by_mode[ReadMode::C as usize], 3);
    }
}
