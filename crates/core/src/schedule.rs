//! Precompiled micro-op schedules: the per-layer control stream, decoded
//! once at [`crate::Accelerator::prepare`] time.
//!
//! The paper's control path is *static*: the HFSM expands each layer's
//! 61-bit instructions into a fully deterministic per-cycle sequence of
//! NB/SB reads, PE steps, and write-backs (§7, Figs. 10–12) — nothing
//! about it depends on input data. This module runs the existing
//! instrumented decoder **once** per layer while a [`ScheduleRecorder`]
//! listens on the engine's fault-filter hook points, and freezes what it
//! saw into a [`LayerSchedule`]:
//!
//! * the layer's complete [`LayerStats`] delta (cycles, per-mode NB
//!   reads, SB/IB traffic, PE ops, FIFO activity, bank-conflict stalls —
//!   all input-independent),
//! * the deduplicated `(site, address) → access multiplicity` stream of
//!   every SRAM word the layer touches, in exactly the addressing scheme
//!   the fault layer keys on, and
//! * the PE mesh's cumulative FIFO peak occupancy after the layer.
//!
//! Sessions then *replay* the schedule instead of re-deriving it: the
//! statistics are absorbed in one call, fault decisions are resolved per
//! unique address (times its multiplicity) instead of per access, and
//! only the arithmetic that actually produces neuron values is executed.
//! The schedule lives in an `Arc` inside [`crate::PreparedNetwork`], so
//! every `Session` of a tenant shares one copy of the decoded control
//! state.
//!
//! The hook-point contract with `shidiannao-faults` (see DESIGN.md §3f):
//! a fault decision is a pure function of `(seed, site, layer, address)`,
//! so a schedule that reproduces the exact multiset of filtered addresses
//! reproduces the exact faults — bit-identically, in any order.

use crate::config::AcceleratorConfig;
use crate::stats::LayerStats;
use shidiannao_cnn::Layer;
use shidiannao_faults::{FaultPlan, FaultSite, FaultStats, SramProtection};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One deduplicated SRAM word access: the logical address the fault
/// layer keys on, plus how many times the layer reads that word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRec {
    /// Site-specific logical word address (NB cell, SB weight/bias
    /// coordinate).
    pub addr: [u64; 3],
    /// Accesses the layer performs on this word (each one is filtered —
    /// and counted — by the fault layer on the live path).
    pub mult: u32,
}

/// One layer's precompiled micro-op schedule.
#[derive(Clone, Debug, Default)]
pub struct LayerSchedule {
    /// The layer's complete statistics delta, captured *before* the
    /// bank-conflict stall folding the outer loop applies (so the fold
    /// stays shared between the live and replay paths).
    pub(crate) stats: LayerStats,
    /// Every NBin word the layer reads, deduplicated with multiplicity.
    pub(crate) nb_reads: Vec<ReadRec>,
    /// Every SB word (weight or bias) the layer reads, deduplicated with
    /// multiplicity, sorted by address for patch lookup.
    pub(crate) sb_reads: Vec<ReadRec>,
    /// `true` when NB addresses are flat mode (d) indices
    /// (`[flat, 0, 0]`, classifier layers) rather than spatial
    /// `[map, x, y]` cells.
    pub(crate) nb_flat: bool,
    /// The PE mesh's cumulative `(FIFO-H, FIFO-V)` peak occupancy after
    /// the layer — peaks are monotone across a run, so replay folds this
    /// in to keep any later live-decoded layer's peak stats identical.
    pub(crate) fifo_peaks_after: (usize, usize),
    /// `false` for layers the replay executor does not model
    /// (normalization layers, multi-map-packed convolutions): they
    /// live-decode every run.
    pub(crate) replayable: bool,
    /// `true` when the schedule optimizer has rewritten this layer's
    /// replay body to run whole output rows per lane-kernel call
    /// (conv/pool only — see [`crate::opt`]). Recordings always start
    /// with the block-sweep body (`false`).
    pub(crate) row_lanes: bool,
}

impl LayerSchedule {
    /// `true` when sessions replay this layer instead of live-decoding
    /// it.
    pub fn replayable(&self) -> bool {
        self.replayable
    }

    /// Simulated cycles the layer contributes (before bank-conflict
    /// stall folding).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Deduplicated NB words the layer touches.
    pub fn nb_words(&self) -> usize {
        self.nb_reads.len()
    }

    /// Deduplicated SB words the layer touches.
    pub fn sb_words(&self) -> usize {
        self.sb_reads.len()
    }

    /// `true` when the optimizer rewrote this layer's replay body to
    /// whole-output-row lane-kernel calls.
    pub fn row_lanes(&self) -> bool {
        self.row_lanes
    }

    /// NB read requests the layer issues (sum over modes (a)–(f)).
    pub fn nb_read_accesses(&self) -> u64 {
        self.stats.nbin.read_accesses
    }

    /// SB read requests the layer issues.
    pub fn sb_read_accesses(&self) -> u64 {
        self.stats.sb.read_accesses
    }
}

/// A whole network's precompiled control state, shared (`Arc`) by every
/// [`crate::Session`] opened on the owning [`crate::PreparedNetwork`].
#[derive(Clone, Debug, Default)]
pub struct NetworkSchedule {
    layers: Vec<LayerSchedule>,
}

impl NetworkSchedule {
    /// The placeholder installed while the recording pass itself runs.
    pub(crate) fn empty() -> NetworkSchedule {
        NetworkSchedule::default()
    }

    /// Rebuilds a schedule from transformed per-layer entries — the
    /// schedule optimizer's constructor ([`crate::opt::optimize`]).
    pub(crate) fn from_layers(layers: Vec<LayerSchedule>) -> NetworkSchedule {
        NetworkSchedule { layers }
    }

    /// Per-layer schedules, in execution order.
    pub fn layers(&self) -> &[LayerSchedule] {
        &self.layers
    }

    /// Number of layers the schedule covers (0 for the placeholder).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// How many layers sessions replay rather than live-decode.
    pub fn replayable_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.replayable).count()
    }

    /// Approximate heap footprint of the schedule — the control state a
    /// multi-tenant deployment shares across sessions instead of
    /// re-deriving per cycle per session.
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                core::mem::size_of::<LayerSchedule>()
                    + (l.nb_reads.len() + l.sb_reads.len()) * core::mem::size_of::<ReadRec>()
            })
            .sum()
    }
}

// ----- recording ------------------------------------------------------

/// The 64-bit finalizer of `splitmix64`, used to hash recorded
/// addresses and — via [`crate::accel::NbResidency`] — resident NBin
/// row contents (the fault layer has its own copy; the two never need
/// to agree).
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A non-cryptographic hasher for `[u64; 3]` addresses: recording
/// filters millions of words per network, so the default SipHash would
/// dominate the one-time prepare cost.
#[derive(Default)]
pub(crate) struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
}

type AddrBuildHasher = BuildHasherDefault<AddrHasher>;

/// Deduplicating accumulator for one site's address stream.
#[derive(Default)]
struct AccessSet {
    index: HashMap<[u64; 3], u32, AddrBuildHasher>,
    list: Vec<ReadRec>,
}

impl AccessSet {
    #[inline]
    fn note(&mut self, addr: [u64; 3]) {
        match self.index.entry(addr) {
            Entry::Occupied(e) => self.list[*e.get() as usize].mult += 1,
            Entry::Vacant(e) => {
                e.insert(self.list.len() as u32);
                self.list.push(ReadRec { addr, mult: 1 });
            }
        }
    }

    fn drain(&mut self) -> Vec<ReadRec> {
        self.index.clear();
        core::mem::take(&mut self.list)
    }
}

/// Listens on the engine's fault-filter hook points during the one
/// recording pass `prepare()` runs, and freezes each layer's control
/// stream into a [`LayerSchedule`].
#[derive(Default)]
pub(crate) struct ScheduleRecorder {
    layers: Vec<LayerSchedule>,
    nb: AccessSet,
    sb: AccessSet,
    replayable: bool,
    nb_flat: bool,
}

impl ScheduleRecorder {
    pub(crate) fn new() -> ScheduleRecorder {
        ScheduleRecorder::default()
    }

    /// Starts recording a layer. For non-replayable layers the engine
    /// detaches the recorder, so no addresses arrive; the schedule entry
    /// still exists (with its flag) to keep layer indices aligned.
    pub(crate) fn begin_layer(&mut self, replayable: bool, nb_flat: bool) {
        self.replayable = replayable;
        self.nb_flat = nb_flat;
    }

    /// One NBin word delivered through a fault-filter hook point.
    #[inline]
    pub(crate) fn note_nb(&mut self, addr: [u64; 3]) {
        self.nb.note(addr);
    }

    /// One SB word (weight or bias) delivered through the fault filter.
    #[inline]
    pub(crate) fn note_sb(&mut self, addr: [u64; 3]) {
        self.sb.note(addr);
    }

    /// Finishes the layer: captures its statistics delta (pre
    /// bank-conflict folding) and the mesh's cumulative FIFO peaks.
    pub(crate) fn finish_layer(&mut self, stats: &LayerStats, fifo_peaks_after: (usize, usize)) {
        let mut sb_reads = self.sb.drain();
        // Sorted for the replay executor's binary-search patch lookup.
        sb_reads.sort_unstable_by_key(|a| a.addr);
        let mut stats = stats.clone();
        // The session fetches the layer's instructions live on every run
        // (IB faults are decided at fetch, replay or not), charging IB
        // traffic into the layer slot before dispatch — so the absorbed
        // delta must not carry the recording run's IB fetches too.
        stats.ib = crate::stats::BufferTraffic::default();
        self.layers.push(LayerSchedule {
            stats,
            nb_reads: self.nb.drain(),
            sb_reads,
            nb_flat: self.nb_flat,
            fifo_peaks_after,
            replayable: self.replayable,
            row_lanes: false,
        });
    }

    pub(crate) fn into_schedule(self) -> NetworkSchedule {
        NetworkSchedule {
            layers: self.layers,
        }
    }
}

/// Whether the replay executor models this layer under this
/// configuration. Normalization layers (decomposed LRN/LCN sub-passes
/// with staged NBout re-reads) and multi-map-packed convolutions always
/// live-decode.
pub(crate) fn layer_replayable(cfg: &AcceleratorConfig, layer: &Layer) -> bool {
    use shidiannao_cnn::LayerBody;
    match layer.body() {
        LayerBody::Conv { .. } => !crate::exec::packed_applies_cfg(cfg, layer),
        LayerBody::Pool { .. } | LayerBody::Fc { .. } => true,
        LayerBody::Lrn(_) | LayerBody::Lcn { .. } => false,
    }
}

// ----- fault overlays -------------------------------------------------

/// A silent-fault overlay: everything an active fault plan does to one
/// replayed layer, resolved ahead of time from the schedule's address
/// stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct SilentOverlay {
    /// NB cells whose delivered value flips (XOR mask), applied in place
    /// to the input stack before the layer's arithmetic.
    pub(crate) nb_patches: Vec<([u64; 3], u16)>,
    /// SB words whose delivered value flips, sorted by address; the
    /// replay executor patches weights/biases at fetch time.
    pub(crate) sb_patches: Vec<([u64; 3], u16)>,
    /// The exact fault-counter delta the live path would accumulate over
    /// the layer (each faulted word counts once per access).
    pub(crate) delta: FaultStats,
}

/// What the fault plan does to one layer of the schedule.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum LayerOverlay {
    /// No fault touches the layer: replay is pure arithmetic.
    Clean,
    /// Only silent/corrected faults fire: replay with patched values and
    /// a precomputed counter delta.
    Silent(SilentOverlay),
    /// At least one access detects an uncorrectable error: the layer
    /// live-decodes so the abort fires at the exact access (and with the
    /// exact partial statistics) the live path produces.
    Abort,
}

/// Resolves a fault plan against one layer's recorded address stream.
pub(crate) fn build_overlay(
    plan: &FaultPlan,
    layer_index: usize,
    sched: &LayerSchedule,
) -> LayerOverlay {
    let mut overlay = SilentOverlay::default();
    let protection = plan.protection();
    let site = |site: FaultSite,
                reads: &[ReadRec],
                patches: &mut Vec<([u64; 3], u16)>,
                delta: &mut FaultStats|
     -> bool {
        for rec in reads {
            let Some(mask) = plan.flip_mask(site, layer_index, rec.addr) else {
                continue;
            };
            let mult = rec.mult as u64;
            let double = mask.count_ones() > 1;
            match site {
                FaultSite::NbIn | FaultSite::NbOut => delta.nb_faults += mult,
                FaultSite::Sb => delta.sb_faults += mult,
                FaultSite::Ib => delta.ib_faults += mult,
                FaultSite::Pe | FaultSite::Scanline => {}
            }
            if double {
                delta.double_bit += mult;
            }
            match protection {
                SramProtection::None => {
                    delta.silent += mult;
                    patches.push((rec.addr, mask));
                }
                SramProtection::Parity => {
                    if double {
                        delta.silent += mult;
                        patches.push((rec.addr, mask));
                    } else {
                        return false; // detected → abort
                    }
                }
                SramProtection::Secded => {
                    if double {
                        return false; // detected → abort
                    }
                    delta.corrected += mult;
                }
            }
        }
        true
    };
    let mut delta = FaultStats::default();
    if !site(
        FaultSite::NbIn,
        &sched.nb_reads,
        &mut overlay.nb_patches,
        &mut delta,
    ) || !site(
        FaultSite::Sb,
        &sched.sb_reads,
        &mut overlay.sb_patches,
        &mut delta,
    ) {
        return LayerOverlay::Abort;
    }
    overlay.delta = delta;
    if overlay.delta == FaultStats::default() {
        LayerOverlay::Clean
    } else {
        // The recorder sorted `sb_reads`, so the patches (a filtered
        // subsequence) are already sorted for binary search.
        LayerOverlay::Silent(overlay)
    }
}

/// XORs a layer's silent NB flips into the input stack in place. Safe:
/// the live path filters every read of a cell identically (decisions are
/// address-pure), the stack is never re-read after the role swap, and
/// layer traces snapshot outputs before the *next* layer patches them.
pub(crate) fn apply_nb_patches(
    stack: &mut shidiannao_tensor::MapStack<shidiannao_fixed::Fx>,
    nb_flat: bool,
    patches: &[([u64; 3], u16)],
) {
    use shidiannao_fixed::Fx;
    let (w, h) = (stack.width(), stack.height());
    for &(addr, mask) in patches {
        let (map, x, y) = if nb_flat {
            let flat = addr[0] as usize;
            let per_map = w * h;
            let rem = flat % per_map;
            (flat / per_map, rem % w, rem / w)
        } else {
            (addr[0] as usize, addr[1] as usize, addr[2] as usize)
        };
        let fm = stack
            .get_mut(map)
            .expect("recorded NB address within the loaded stack");
        let cell = fm
            .get_mut(x, y)
            .expect("recorded NB address within the map");
        *cell = Fx::from_bits(cell.to_bits() ^ mask as i16);
    }
}

/// Binary-search patch lookup for SB words served during replay; a
/// miss (the overwhelmingly common case) costs one emptiness check.
#[inline]
pub(crate) fn patch_fx(
    patches: &[([u64; 3], u16)],
    addr: [u64; 3],
    v: shidiannao_fixed::Fx,
) -> shidiannao_fixed::Fx {
    if patches.is_empty() {
        return v;
    }
    match patches.binary_search_by(|p| p.0.cmp(&addr)) {
        Ok(i) => shidiannao_fixed::Fx::from_bits(v.to_bits() ^ patches[i].1 as i16),
        Err(_) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_faults::FaultConfig;

    fn rec(addr: [u64; 3], mult: u32) -> ReadRec {
        ReadRec { addr, mult }
    }

    #[test]
    fn access_set_deduplicates_with_multiplicity() {
        let mut s = AccessSet::default();
        s.note([1, 2, 3]);
        s.note([4, 5, 6]);
        s.note([1, 2, 3]);
        s.note([1, 2, 3]);
        let list = s.drain();
        assert_eq!(list, vec![rec([1, 2, 3], 3), rec([4, 5, 6], 1)]);
        // Reusable after draining.
        s.note([7, 7, 7]);
        assert_eq!(s.drain(), vec![rec([7, 7, 7], 1)]);
    }

    #[test]
    fn zero_plan_builds_clean_overlays() {
        let sched = LayerSchedule {
            nb_reads: (0..64).map(|i| rec([0, i, 0], 2)).collect(),
            sb_reads: vec![rec([0, u64::MAX, 0], 4)],
            replayable: true,
            ..LayerSchedule::default()
        };
        assert_eq!(
            build_overlay(&FaultPlan::none(), 0, &sched),
            LayerOverlay::Clean
        );
    }

    #[test]
    fn overlay_counters_scale_with_multiplicity() {
        let plan = FaultPlan::new(FaultConfig::uniform(42, 0.02, SramProtection::None));
        // Find a faulting NB address under this plan at layer 0.
        let addr = (0..100_000u64)
            .map(|a| [0, a, 0])
            .find(|&a| plan.flip_mask(FaultSite::NbIn, 0, a).is_some())
            .expect("a fault fires somewhere");
        let mask = plan
            .flip_mask(FaultSite::NbIn, 0, addr)
            .expect("just found");
        let double = mask.count_ones() > 1;
        let sched = LayerSchedule {
            nb_reads: vec![rec(addr, 5)],
            replayable: true,
            ..LayerSchedule::default()
        };
        match build_overlay(&plan, 0, &sched) {
            LayerOverlay::Silent(s) => {
                assert_eq!(s.delta.nb_faults, 5);
                assert_eq!(s.delta.silent, 5);
                assert_eq!(s.delta.double_bit, if double { 5 } else { 0 });
                assert_eq!(s.nb_patches, vec![(addr, mask)]);
            }
            o => panic!("expected a silent overlay, got {o:?}"),
        }
        // The same fault is layer-epoch separated: a different layer
        // index resolves independently.
        let other = build_overlay(&plan, 3, &sched);
        assert!(matches!(
            other,
            LayerOverlay::Clean | LayerOverlay::Silent(_) | LayerOverlay::Abort
        ));
    }

    #[test]
    fn secded_single_bit_is_counted_but_not_patched() {
        let plan = FaultPlan::new(FaultConfig::uniform(42, 0.02, SramProtection::Secded));
        let addr = (0..100_000u64)
            .map(|a| [0, a, 0])
            .find(|&a| {
                plan.flip_mask(FaultSite::NbIn, 0, a)
                    .is_some_and(|m| m.count_ones() == 1)
            })
            .expect("a single-bit fault fires somewhere");
        let sched = LayerSchedule {
            nb_reads: vec![rec(addr, 3)],
            replayable: true,
            ..LayerSchedule::default()
        };
        match build_overlay(&plan, 0, &sched) {
            LayerOverlay::Silent(s) => {
                assert_eq!(s.delta.corrected, 3);
                assert_eq!(s.delta.silent, 0);
                assert!(s.nb_patches.is_empty());
            }
            o => panic!("expected a silent (corrected) overlay, got {o:?}"),
        }
    }

    #[test]
    fn detected_faults_force_live_decode() {
        let plan = FaultPlan::new(FaultConfig::uniform(42, 0.02, SramProtection::Secded));
        let addr = (0..200_000u64)
            .map(|a| [0, a, 0])
            .find(|&a| {
                plan.flip_mask(FaultSite::NbIn, 0, a)
                    .is_some_and(|m| m.count_ones() == 2)
            })
            .expect("a double-bit fault fires somewhere");
        let sched = LayerSchedule {
            nb_reads: vec![rec(addr, 1)],
            replayable: true,
            ..LayerSchedule::default()
        };
        assert_eq!(build_overlay(&plan, 0, &sched), LayerOverlay::Abort);
    }

    #[test]
    fn nb_patches_apply_to_spatial_and_flat_addresses() {
        use shidiannao_fixed::Fx;
        use shidiannao_tensor::MapStack;
        let mut stack = MapStack::filled(3, 2, 2, Fx::from_f32(0.5));
        let before = stack[1][(2, 1)];
        apply_nb_patches(&mut stack, false, &[([1, 2, 1], 0b100)]);
        assert_eq!(stack[1][(2, 1)].to_bits(), before.to_bits() ^ 0b100);
        // Flat index 7 = map 1, rem 1 → (x 1, y 0).
        let before = stack[1][(1, 0)];
        apply_nb_patches(&mut stack, true, &[([7, 0, 0], 1)]);
        assert_eq!(stack[1][(1, 0)].to_bits(), before.to_bits() ^ 1);
    }

    #[test]
    fn patch_lookup_hits_and_misses() {
        use shidiannao_fixed::Fx;
        let patches = vec![([1, 0, 0], 0b1u16), ([2, 0, 0], 0b10u16)];
        let v = Fx::from_f32(1.0);
        assert_eq!(patch_fx(&patches, [0, 0, 0], v), v);
        assert_eq!(
            patch_fx(&patches, [2, 0, 0], v).to_bits(),
            v.to_bits() ^ 0b10
        );
        assert_eq!(patch_fx(&[], [2, 0, 0], v), v);
    }
}
