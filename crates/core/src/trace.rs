//! Machine-readable exports of execution statistics.
//!
//! Architecture work lives and dies by its measurement dumps; this module
//! renders a run's per-layer counters as CSV (for spreadsheets/plotters)
//! and as a human-readable summary table.

use crate::stats::{LayerStats, ReadMode, RunStats};
use std::io::{self, Write};

/// The CSV header matching [`layer_csv_row`].
pub const CSV_HEADER: &str = "layer,cycles,pe_busy_slots,pe_total_slots,pe_utilization,\
nbin_read_bytes,nbin_read_accesses,nbin_write_bytes,nbout_write_bytes,nbout_read_bytes,\
sb_read_bytes,ib_read_bytes,reads_a,reads_b,reads_c,reads_d,reads_e,reads_f,\
pe_muls,pe_adds,pe_cmps,alu_acts,alu_divs,fifo_pushes,fifo_pops,fifo_h_peak,fifo_v_peak,\
bank_conflict_cycles";

/// One layer's counters as a CSV row (no trailing newline).
pub fn layer_csv_row(s: &LayerStats) -> String {
    format!(
        "{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        s.label,
        s.cycles,
        s.pe_busy_slots,
        s.pe_total_slots,
        s.pe_utilization(),
        s.nbin.read_bytes,
        s.nbin.read_accesses,
        s.nbin.write_bytes,
        s.nbout.write_bytes,
        s.nbout.read_bytes,
        s.sb.read_bytes,
        s.ib.read_bytes,
        s.reads_by_mode[ReadMode::A as usize],
        s.reads_by_mode[ReadMode::B as usize],
        s.reads_by_mode[ReadMode::C as usize],
        s.reads_by_mode[ReadMode::D as usize],
        s.reads_by_mode[ReadMode::E as usize],
        s.reads_by_mode[ReadMode::F as usize],
        s.pe_muls,
        s.pe_adds,
        s.pe_cmps,
        s.alu_acts,
        s.alu_divs,
        s.fifo_pushes,
        s.fifo_pops,
        s.fifo_h_peak,
        s.fifo_v_peak,
        s.bank_conflict_cycles,
    )
}

/// Renders a whole run as CSV: header, one row per layer, one `total`
/// row.
pub fn stats_to_csv(stats: &RunStats) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for layer in stats.layers() {
        out.push_str(&layer_csv_row(layer));
        out.push('\n');
    }
    let mut total = stats.total();
    total.label = "total".to_string();
    out.push_str(&layer_csv_row(&total));
    out.push('\n');
    out
}

/// Writes [`stats_to_csv`] to any writer (a `&mut File`, a `Vec<u8>`, …).
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_stats_csv<W: Write>(mut writer: W, stats: &RunStats) -> io::Result<()> {
    writer.write_all(stats_to_csv(stats).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunStats {
        let mut run = RunStats::new();
        let mut a = LayerStats::new("C1");
        a.cycles = 100;
        a.pe_busy_slots = 500;
        a.pe_total_slots = 640;
        a.nbin_read(ReadMode::A, 128);
        a.nbin_read(ReadMode::F, 16);
        a.pe_muls = 500;
        let mut b = LayerStats::new("F2");
        b.cycles = 40;
        b.nbin_read(ReadMode::D, 2);
        run.push_layer(a);
        run.push_layer(b);
        run
    }

    #[test]
    fn csv_has_header_layers_and_total() {
        let csv = stats_to_csv(&sample_run());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("layer,cycles"));
        assert!(lines[1].starts_with("C1,100,"));
        assert!(lines[2].starts_with("F2,40,"));
        assert!(lines[3].starts_with("total,140,"));
    }

    #[test]
    fn csv_column_count_matches_header() {
        let header_cols = CSV_HEADER.split(',').count();
        for line in stats_to_csv(&sample_run()).lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
        }
    }

    #[test]
    fn mode_columns_land_in_order() {
        let csv = stats_to_csv(&sample_run());
        let c1: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let header: Vec<&str> = CSV_HEADER.split(',').collect();
        let idx = |name: &str| header.iter().position(|&h| h == name).unwrap();
        assert_eq!(c1[idx("reads_a")], "1");
        assert_eq!(c1[idx("reads_f")], "1");
        assert_eq!(c1[idx("reads_d")], "0");
    }

    #[test]
    fn writer_round_trip() {
        let mut buf = Vec::new();
        write_stats_csv(&mut buf, &sample_run()).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), stats_to_csv(&sample_run()));
    }
}
