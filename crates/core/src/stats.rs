//! Execution statistics: cycles, buffer traffic, PE activity.
//!
//! Every event the energy model charges for is counted here, and the
//! bandwidth numbers of Fig. 7 are derived from the byte counters.

use core::fmt;
use core::ops::AddAssign;

/// The NB controller's read modes (Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReadMode {
    /// (a) Read bank group 0 (banks `0 .. Py−1`), a full `Px × Py` tile.
    A,
    /// (b) Read bank group 1 (banks `Py .. 2Py−1`), a full tile.
    B,
    /// (c) Read one bank: up to `Px` neurons of one row.
    C,
    /// (d) Read a single neuron (classifier broadcast).
    D,
    /// (e) Read neurons with a step size (strided windows).
    E,
    /// (f) Read a single neuron per bank: a column of up to `Py` neurons.
    F,
}

impl ReadMode {
    /// All six modes, in paper order.
    pub const ALL: [ReadMode; 6] = [
        ReadMode::A,
        ReadMode::B,
        ReadMode::C,
        ReadMode::D,
        ReadMode::E,
        ReadMode::F,
    ];
}

impl fmt::Display for ReadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            ReadMode::A => 'a',
            ReadMode::B => 'b',
            ReadMode::C => 'c',
            ReadMode::D => 'd',
            ReadMode::E => 'e',
            ReadMode::F => 'f',
        };
        write!(f, "({c})")
    }
}

/// Traffic counters for one buffer role.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferTraffic {
    /// Number of read requests.
    pub read_accesses: u64,
    /// Bytes delivered by reads.
    pub read_bytes: u64,
    /// Number of write requests.
    pub write_accesses: u64,
    /// Bytes absorbed by writes.
    pub write_bytes: u64,
}

impl BufferTraffic {
    /// Records a read of `bytes` bytes.
    #[inline]
    pub fn read(&mut self, bytes: u64) {
        self.read_accesses += 1;
        self.read_bytes += bytes;
    }

    /// Records a write of `bytes` bytes.
    #[inline]
    pub fn write(&mut self, bytes: u64) {
        self.write_accesses += 1;
        self.write_bytes += bytes;
    }

    /// Total bytes moved.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

impl AddAssign for BufferTraffic {
    fn add_assign(&mut self, rhs: BufferTraffic) {
        self.read_accesses += rhs.read_accesses;
        self.read_bytes += rhs.read_bytes;
        self.write_accesses += rhs.write_accesses;
        self.write_bytes += rhs.write_bytes;
    }
}

/// All counters for one executed layer (or a whole run, when aggregated).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerStats {
    /// Table 2 style label of the layer (empty for aggregates).
    pub label: String,
    /// Cycles spent.
    pub cycles: u64,
    /// Input-neuron buffer traffic (the NB currently serving reads).
    pub nbin: BufferTraffic,
    /// Output-neuron buffer traffic (the NB collecting results).
    pub nbout: BufferTraffic,
    /// Synapse buffer traffic.
    pub sb: BufferTraffic,
    /// Instruction buffer traffic.
    pub ib: BufferTraffic,
    /// NBin read requests per mode `(a)…(f)`, paper order.
    pub reads_by_mode: [u64; 6],
    /// PE multiplications.
    pub pe_muls: u64,
    /// PE additions (accumulates, matrix adds, pooling sums).
    pub pe_adds: u64,
    /// PE comparisons (max pooling).
    pub pe_cmps: u64,
    /// ALU activation evaluations.
    pub alu_acts: u64,
    /// ALU divisions.
    pub alu_divs: u64,
    /// PE-cycle slots where a PE did useful work.
    pub pe_busy_slots: u64,
    /// PE-cycle slots available (`cycles × Px × Py`, accumulated per
    /// compute cycle).
    pub pe_total_slots: u64,
    /// Values moved through inter-PE FIFO pops (the reads *avoided* at
    /// NBin).
    pub fifo_pops: u64,
    /// Values pushed into PE FIFOs.
    pub fifo_pushes: u64,
    /// Deepest FIFO-H occupancy observed.
    pub fifo_h_peak: usize,
    /// Deepest FIFO-V occupancy observed.
    pub fifo_v_peak: usize,
    /// Extra cycles a banked SRAM would need to serialise conflicting
    /// requests (always measured; added to `cycles` only when
    /// `AcceleratorConfig::model_bank_conflicts` is set).
    pub bank_conflict_cycles: u64,
}

impl LayerStats {
    /// Creates empty counters labelled for a layer.
    pub fn new(label: impl Into<String>) -> LayerStats {
        LayerStats {
            label: label.into(),
            ..LayerStats::default()
        }
    }

    /// Zeroes every counter and relabels in place, reusing the label
    /// `String`'s capacity — how [`RunStats::begin_layer`] recycles slots
    /// without allocating.
    pub fn reset_with_label(&mut self, label: &str) {
        let mut s = core::mem::take(&mut self.label);
        s.clear();
        s.push_str(label);
        *self = LayerStats {
            label: s,
            ..LayerStats::default()
        };
    }

    /// Records an NBin read in a given mode.
    #[inline]
    pub fn nbin_read(&mut self, mode: ReadMode, bytes: u64) {
        self.nbin.read(bytes);
        self.reads_by_mode[mode as usize] += 1;
    }

    /// Fraction of PE slots that did useful work, in `[0, 1]`.
    pub fn pe_utilization(&self) -> f64 {
        if self.pe_total_slots == 0 {
            0.0
        } else {
            self.pe_busy_slots as f64 / self.pe_total_slots as f64
        }
    }

    /// Bytes read from NBin and SB per cycle — the internal bandwidth
    /// requirement of Fig. 7 (multiply by the clock in GHz for GB/s).
    pub fn internal_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.nbin.read_bytes + self.sb.read_bytes) as f64 / self.cycles as f64
        }
    }

    /// Merges another layer's counters into this aggregate.
    pub fn absorb(&mut self, other: &LayerStats) {
        self.cycles += other.cycles;
        self.nbin += other.nbin;
        self.nbout += other.nbout;
        self.sb += other.sb;
        self.ib += other.ib;
        for (a, b) in self.reads_by_mode.iter_mut().zip(other.reads_by_mode) {
            *a += b;
        }
        self.pe_muls += other.pe_muls;
        self.pe_adds += other.pe_adds;
        self.pe_cmps += other.pe_cmps;
        self.alu_acts += other.alu_acts;
        self.alu_divs += other.alu_divs;
        self.pe_busy_slots += other.pe_busy_slots;
        self.pe_total_slots += other.pe_total_slots;
        self.fifo_pops += other.fifo_pops;
        self.fifo_pushes += other.fifo_pushes;
        self.fifo_h_peak = self.fifo_h_peak.max(other.fifo_h_peak);
        self.fifo_v_peak = self.fifo_v_peak.max(other.fifo_v_peak);
        self.bank_conflict_cycles += other.bank_conflict_cycles;
    }
}

/// Statistics of a complete network execution.
///
/// Layer slots are recycled across runs: [`RunStats::restart`] rewinds
/// the live count to zero without dropping the `Vec` (or any slot's label
/// `String`), and [`RunStats::begin_layer`] reuses a retired slot when one
/// exists — so a steady-state [`crate::Session`] run records its
/// statistics without a single allocation. Only the live slots
/// participate in `Clone`, `PartialEq`, and `Debug`.
#[derive(Default)]
pub struct RunStats {
    layers: Vec<LayerStats>,
    live: usize,
}

impl Clone for RunStats {
    fn clone(&self) -> RunStats {
        RunStats {
            layers: self.layers().to_vec(),
            live: self.live,
        }
    }

    fn clone_from(&mut self, source: &RunStats) {
        self.layers.truncate(source.live);
        for (dst, src) in self.layers.iter_mut().zip(source.layers()) {
            dst.clone_from(src);
        }
        while self.layers.len() < source.live {
            self.layers.push(source.layers[self.layers.len()].clone());
        }
        self.live = source.live;
    }
}

impl PartialEq for RunStats {
    fn eq(&self, other: &RunStats) -> bool {
        self.layers() == other.layers()
    }
}

impl fmt::Debug for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunStats")
            .field("layers", &self.layers())
            .finish()
    }
}

impl RunStats {
    /// Creates an empty record.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Appends one layer's counters.
    pub fn push_layer(&mut self, stats: LayerStats) {
        self.layers.truncate(self.live);
        self.layers.push(stats);
        self.live += 1;
    }

    /// Rewinds to zero live layers for a fresh run, keeping every retired
    /// slot's storage for [`RunStats::begin_layer`] to reuse.
    pub fn restart(&mut self) {
        self.live = 0;
    }

    /// Starts recording a new layer, reusing a retired slot (and its label
    /// capacity) when available; returns the slot to count into.
    pub fn begin_layer(&mut self, label: &str) -> &mut LayerStats {
        if self.live < self.layers.len() {
            self.layers[self.live].reset_with_label(label);
        } else {
            self.layers.push(LayerStats::new(label));
        }
        self.live += 1;
        &mut self.layers[self.live - 1]
    }

    /// Per-layer counters, in execution order.
    pub fn layers(&self) -> &[LayerStats] {
        &self.layers[..self.live]
    }

    /// Aggregated counters across all layers.
    pub fn total(&self) -> LayerStats {
        let mut t = LayerStats::new("");
        for l in self.layers() {
            t.absorb(l);
        }
        t
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.layers().iter().map(|l| l.cycles).sum()
    }

    /// Wall-clock seconds at the given frequency.
    pub fn seconds_at(&self, frequency_ghz: f64) -> f64 {
        self.cycles() as f64 / (frequency_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates() {
        let mut t = BufferTraffic::default();
        t.read(16);
        t.read(2);
        t.write(128);
        assert_eq!(t.read_accesses, 2);
        assert_eq!(t.read_bytes, 18);
        assert_eq!(t.write_bytes, 128);
        assert_eq!(t.total_bytes(), 146);
    }

    #[test]
    fn read_modes_tallied_separately() {
        let mut s = LayerStats::new("C1");
        s.nbin_read(ReadMode::A, 128);
        s.nbin_read(ReadMode::F, 16);
        s.nbin_read(ReadMode::F, 16);
        assert_eq!(s.reads_by_mode[ReadMode::A as usize], 1);
        assert_eq!(s.reads_by_mode[ReadMode::F as usize], 2);
        assert_eq!(s.nbin.read_bytes, 160);
    }

    #[test]
    fn utilization_and_bandwidth() {
        let mut s = LayerStats::new("C1");
        s.cycles = 10;
        s.pe_busy_slots = 320;
        s.pe_total_slots = 640;
        s.nbin.read_bytes = 500;
        s.sb.read_bytes = 20;
        assert_eq!(s.pe_utilization(), 0.5);
        assert_eq!(s.internal_bytes_per_cycle(), 52.0);
    }

    #[test]
    fn zero_cycles_is_not_a_division_by_zero() {
        let s = LayerStats::new("x");
        assert_eq!(s.pe_utilization(), 0.0);
        assert_eq!(s.internal_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn run_totals_absorb_layers() {
        let mut run = RunStats::new();
        let mut a = LayerStats::new("C1");
        a.cycles = 100;
        a.fifo_h_peak = 3;
        let mut b = LayerStats::new("S2");
        b.cycles = 50;
        b.fifo_h_peak = 1;
        run.push_layer(a);
        run.push_layer(b);
        assert_eq!(run.cycles(), 150);
        assert_eq!(run.total().fifo_h_peak, 3);
        assert_eq!(run.layers().len(), 2);
        assert_eq!(run.seconds_at(1.0), 150e-9);
    }

    #[test]
    fn restart_recycles_layer_slots() {
        let mut run = RunStats::new();
        let mut a = LayerStats::new("C1");
        a.cycles = 100;
        run.push_layer(a);
        run.restart();
        assert_eq!(run.layers().len(), 0);
        assert_eq!(run.cycles(), 0);
        let slot = run.begin_layer("S2");
        assert_eq!(slot.label, "S2");
        assert_eq!(slot.cycles, 0);
        slot.cycles = 7;
        assert_eq!(run.layers().len(), 1);
        assert_eq!(run.cycles(), 7);
        // Equality and clones see only the live slice.
        let clone = run.clone();
        assert_eq!(clone, run);
        let mut other = RunStats::new();
        other.begin_layer("S2").cycles = 7;
        assert_eq!(other, run);
    }

    #[test]
    fn clone_from_sees_live_slice_only() {
        let mut src = RunStats::new();
        src.begin_layer("C1").cycles = 3;
        src.begin_layer("S2").cycles = 4;
        src.restart();
        src.begin_layer("F1").cycles = 9;
        let mut dst = RunStats::new();
        dst.begin_layer("X").cycles = 1;
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.layers().len(), 1);
        assert_eq!(dst.layers()[0].label, "F1");
    }

    #[test]
    fn mode_display() {
        assert_eq!(ReadMode::A.to_string(), "(a)");
        assert_eq!(ReadMode::F.to_string(), "(f)");
        assert_eq!(ReadMode::ALL.len(), 6);
    }
}
