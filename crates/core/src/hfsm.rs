//! The two-level hierarchical control finite state machine (§7.2, Fig. 12).

use core::fmt;

/// First-level HFSM states: the abstract task the accelerator is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FirstState {
    /// Waiting for work.
    Idle,
    /// Streaming the input image into NBin ("Load"/"Fill").
    Load,
    /// Convolutional layer ("Conv").
    Conv,
    /// Pooling layer ("Pooling").
    Pool,
    /// Classifier layer ("Classifer" in Fig. 12).
    Classifier,
    /// Normalization primitives (square, matrix ops — Fig. 12's
    /// "Square"/"Matrix"/"Others").
    Norm,
    /// ALU post-processing (activation, division).
    Alu,
    /// Execution finished.
    End,
}

/// Second-level HFSM states: the execution phase within a first-level task
/// (Fig. 12's Init / Fill / H-mode / V-mode / Next-Row / Next-window /
/// finish ring).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecondState {
    /// Phase entry: reset PEs, latch parameters.
    Init,
    /// Full-tile fill read (Fig. 13 cycle #0).
    Fill,
    /// Horizontal sweep: right column reads, others propagate (H-mode).
    HMode,
    /// Vertical step: bottom row reads, others propagate (V-mode).
    VMode,
    /// Advance to the next kernel row.
    NextRow,
    /// Advance to the next window / output block.
    NextWindow,
    /// Phase complete.
    Done,
}

/// Legal second-level transitions (the Fig. 12 ring).
fn second_ok(from: SecondState, to: SecondState) -> bool {
    use SecondState::*;
    matches!(
        (from, to),
        (Init, Fill)
            | (Fill, HMode)
            | (Fill, NextRow)
            | (Fill, NextWindow)
            | (Fill, Done)
            | (HMode, HMode)
            | (HMode, NextRow)
            | (HMode, NextWindow)
            | (HMode, Done)
            | (NextRow, VMode)
            | (NextRow, Fill)
            | (VMode, HMode)
            | (VMode, NextRow)
            | (VMode, NextWindow)
            | (VMode, Done)
            | (NextWindow, Fill)
            | (NextWindow, Init)
            | (Done, Init)
    )
}

/// Legal first-level transitions.
fn first_ok(from: FirstState, to: FirstState) -> bool {
    use FirstState::*;
    if from == to {
        return true;
    }
    match (from, to) {
        (Idle, Load) => true,
        (Load, Conv | Pool | Classifier | Norm) => true,
        // Layers chain into each other or into ALU post-processing.
        (Conv | Pool | Classifier | Norm | Alu, Conv | Pool | Classifier | Norm | Alu | End) => {
            true
        }
        (End, Idle) => true,
        _ => false,
    }
}

/// Error raised on an illegal HFSM transition — a control-scheduling bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionError {
    message: String,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal HFSM transition: {}", self.message)
    }
}

impl std::error::Error for TransitionError {}

/// The hierarchical FSM instance the executors drive.
///
/// Executors announce first-level task changes with [`Hfsm::enter`] and
/// phase changes with [`Hfsm::step`]; the machine validates each against
/// the Fig. 12 transition structure and counts transitions (a proxy for
/// decoder activity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hfsm {
    first: FirstState,
    second: SecondState,
    transitions: u64,
}

impl Hfsm {
    /// A fresh machine in `Idle`/`Init`.
    pub fn new() -> Hfsm {
        Hfsm {
            first: FirstState::Idle,
            second: SecondState::Init,
            transitions: 0,
        }
    }

    /// Current first-level state.
    #[inline]
    pub fn first(&self) -> FirstState {
        self.first
    }

    /// Current second-level state.
    #[inline]
    pub fn second(&self) -> SecondState {
        self.second
    }

    /// Number of validated transitions so far.
    #[inline]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Moves to a new first-level state (resetting the second level to
    /// `Init`).
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] if Fig. 12 does not allow the edge.
    pub fn enter(&mut self, state: FirstState) -> Result<(), TransitionError> {
        if !first_ok(self.first, state) {
            return Err(TransitionError {
                message: format!("{:?} -> {:?}", self.first, state),
            });
        }
        self.first = state;
        self.second = SecondState::Init;
        self.transitions += 1;
        Ok(())
    }

    /// Moves to a new second-level phase within the current task.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] if the phase ring does not allow the
    /// edge.
    pub fn step(&mut self, state: SecondState) -> Result<(), TransitionError> {
        if self.second == state {
            return Ok(());
        }
        if !second_ok(self.second, state) {
            return Err(TransitionError {
                message: format!("{:?}/{:?} -> {:?}", self.first, self.second, state),
            });
        }
        self.second = state;
        self.transitions += 1;
        Ok(())
    }
}

impl Default for Hfsm {
    fn default() -> Hfsm {
        Hfsm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_conv_walk() {
        // Idle → Load → Conv with the Fig. 13 phase ring.
        let mut m = Hfsm::new();
        m.enter(FirstState::Load).unwrap();
        m.enter(FirstState::Conv).unwrap();
        m.step(SecondState::Fill).unwrap();
        m.step(SecondState::HMode).unwrap();
        m.step(SecondState::HMode).unwrap();
        m.step(SecondState::NextRow).unwrap();
        m.step(SecondState::VMode).unwrap();
        m.step(SecondState::HMode).unwrap();
        m.step(SecondState::NextWindow).unwrap();
        m.step(SecondState::Fill).unwrap();
        m.step(SecondState::Done).unwrap();
        m.enter(FirstState::Alu).unwrap();
        m.enter(FirstState::End).unwrap();
        assert!(m.transitions() > 5);
    }

    #[test]
    fn illegal_first_transition_rejected() {
        let mut m = Hfsm::new();
        let err = m.enter(FirstState::Conv).unwrap_err();
        assert!(err.to_string().contains("Idle"));
        assert_eq!(m.first(), FirstState::Idle);
    }

    #[test]
    fn illegal_second_transition_rejected() {
        let mut m = Hfsm::new();
        m.enter(FirstState::Load).unwrap();
        m.enter(FirstState::Conv).unwrap();
        // Init cannot jump straight to VMode.
        assert!(m.step(SecondState::VMode).is_err());
        assert_eq!(m.second(), SecondState::Init);
    }

    #[test]
    fn self_loops_are_free() {
        let mut m = Hfsm::new();
        m.enter(FirstState::Load).unwrap();
        m.enter(FirstState::Conv).unwrap();
        m.step(SecondState::Fill).unwrap();
        let before = m.transitions();
        m.step(SecondState::Fill).unwrap();
        assert_eq!(m.transitions(), before);
    }

    #[test]
    fn end_returns_to_idle() {
        let mut m = Hfsm::new();
        m.enter(FirstState::Load).unwrap();
        m.enter(FirstState::Classifier).unwrap();
        m.enter(FirstState::End).unwrap();
        m.enter(FirstState::Idle).unwrap();
        assert_eq!(m.first(), FirstState::Idle);
        assert_eq!(Hfsm::default(), Hfsm::new());
    }
}
