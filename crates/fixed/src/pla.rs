//! The ALU's 16-segment piecewise-linear activation interpolator (§5.2).

use crate::Fx;

/// Number of linear segments the ALU divides the approximation domain into.
///
/// The paper (§5.2): "We use a piecewise linear interpolation
/// (`f(x) = aᵢ·x + bᵢ`, when `x ∈ [xᵢ, xᵢ₊₁]` and where `i = 0, …, 15`)".
pub const SEGMENTS: usize = 16;

/// A 16-segment piecewise-linear approximation of a non-linear function.
///
/// "Segment coefficients aᵢ and bᵢ are stored in registers in advance, so
/// that the approximation can be efficiently computed with a multiplier and
/// an adder" (§5.2). `Pla` models exactly that: sixteen `(aᵢ, bᵢ)` register
/// pairs over a uniform partition of `[lo, hi]`, with constant clamping
/// outside the domain, evaluated with one fixed-point multiply and one add.
///
/// Ready-made tables are provided for the activation functions the paper
/// names ([`Pla::tanh`], [`Pla::sigmoid`]) and arbitrary functions can be
/// tabulated with [`Pla::from_fn`] (used by the LRN/LCN decompositions for
/// exponentials, §8.4).
///
/// # Examples
///
/// ```
/// use shidiannao_fixed::{Fx, Pla};
/// let sig = Pla::sigmoid();
/// let y = sig.eval(Fx::from_f32(1.0)).to_f32();
/// assert!((y - 0.7310586).abs() < 0.02);
/// // Outside the domain the output clamps to the asymptote.
/// assert_eq!(sig.eval(Fx::from_f32(100.0)), sig.eval(Fx::from_f32(8.0)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pla {
    lo: Fx,
    hi: Fx,
    below: Fx,
    above: Fx,
    seg_a: [Fx; SEGMENTS],
    seg_b: [Fx; SEGMENTS],
}

impl Pla {
    /// Tabulates a function over `[lo, hi]` into sixteen linear segments.
    ///
    /// Each segment uses the chord slope with a minimax offset (the line is
    /// shifted to split the maximum deviation evenly), halving the error of
    /// plain endpoint interpolation; coefficients are quantized to [`Fx`].
    /// Inputs below `lo` clamp to `f(lo)`, inputs above `hi` clamp to
    /// `f(hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn from_fn(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> Pla {
        assert!(lo < hi, "PLA domain must be non-empty: lo={lo} hi={hi}");
        let step = (hi - lo) / SEGMENTS as f64;
        let mut seg_a = [Fx::ZERO; SEGMENTS];
        let mut seg_b = [Fx::ZERO; SEGMENTS];
        for i in 0..SEGMENTS {
            let x0 = lo + i as f64 * step;
            let x1 = x0 + step;
            let (y0, y1) = (f(x0), f(x1));
            let a = (y1 - y0) / (x1 - x0);
            // Minimax offset: centre the chord between the extreme
            // deviations sampled across the segment.
            let chord_b = y0 - a * x0;
            let (mut dmax, mut dmin) = (f64::MIN, f64::MAX);
            const SAMPLES: usize = 32;
            for s in 0..=SAMPLES {
                let x = x0 + (x1 - x0) * s as f64 / SAMPLES as f64;
                let d = a * x + chord_b - f(x);
                dmax = dmax.max(d);
                dmin = dmin.min(d);
            }
            let b = chord_b - (dmax + dmin) / 2.0;
            seg_a[i] = Fx::from_f64(a);
            seg_b[i] = Fx::from_f64(b);
        }
        Pla {
            lo: Fx::from_f64(lo),
            hi: Fx::from_f64(hi),
            below: Fx::from_f64(f(lo)),
            above: Fx::from_f64(f(hi)),
            seg_a,
            seg_b,
        }
    }

    /// The hyperbolic-tangent table over `[-4, 4]` (tanh is within one LSB
    /// of ±1 outside that range).
    pub fn tanh() -> Pla {
        Pla::from_fn(f64::tanh, -4.0, 4.0)
    }

    /// The logistic-sigmoid table over `[-8, 8]`.
    pub fn sigmoid() -> Pla {
        Pla::from_fn(|x| 1.0 / (1.0 + (-x).exp()), -8.0, 8.0)
    }

    /// The identity table (used when a layer has no activation; evaluating
    /// through it still models the ALU pass).
    pub fn identity() -> Pla {
        Pla::from_fn(|x| x, -128.0, 127.99)
    }

    /// Evaluates the approximation with the ALU datapath: one segment
    /// lookup, one fixed-point multiply, one fixed-point add.
    pub fn eval(&self, x: Fx) -> Fx {
        if x < self.lo {
            return self.below;
        }
        if x >= self.hi {
            return self.above;
        }
        let i = self.segment_index(x);
        self.seg_a[i] * x + self.seg_b[i]
    }

    /// The segment index an input falls into.
    ///
    /// # Panics
    ///
    /// Panics if `x` lies outside `[lo, hi)`; [`Pla::eval`] clamps before
    /// indexing.
    fn segment_index(&self, x: Fx) -> usize {
        let span = (self.hi.to_bits() as i32) - (self.lo.to_bits() as i32);
        let off = (x.to_bits() as i32) - (self.lo.to_bits() as i32);
        assert!((0..span).contains(&off), "input outside PLA domain");
        ((off as i64 * SEGMENTS as i64) / span as i64) as usize
    }

    /// The approximation domain `[lo, hi]`.
    pub fn domain(&self) -> (Fx, Fx) {
        (self.lo, self.hi)
    }

    /// The segment coefficients `(aᵢ, bᵢ)` as stored in the ALU registers.
    pub fn coefficients(&self) -> impl Iterator<Item = (Fx, Fx)> + '_ {
        self.seg_a.iter().copied().zip(self.seg_b.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_error(pla: &Pla, f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
        let mut worst: f64 = 0.0;
        let n = 2000;
        for i in 0..=n {
            let x = lo + (hi - lo) * i as f64 / n as f64;
            let approx = pla.eval(Fx::from_f64(x)).to_f64();
            worst = worst.max((approx - f(x)).abs());
        }
        worst
    }

    #[test]
    fn tanh_error_is_negligible() {
        // "known to bring only negligible accuracy loss" (§5.2); with Q7.8
        // quantization a ~1.5e-2 bound comfortably holds over the domain.
        let e = max_error(&Pla::tanh(), f64::tanh, -6.0, 6.0);
        assert!(e < 0.02, "tanh PLA error {e}");
    }

    #[test]
    fn sigmoid_error_is_negligible() {
        let sig = |x: f64| 1.0 / (1.0 + (-x).exp());
        let e = max_error(&Pla::sigmoid(), sig, -10.0, 10.0);
        assert!(e < 0.015, "sigmoid PLA error {e}");
    }

    #[test]
    fn clamps_outside_domain() {
        let t = Pla::tanh();
        assert_eq!(t.eval(Fx::from_f32(50.0)), t.eval(Fx::from_f32(4.0)));
        assert_eq!(t.eval(Fx::from_f32(-50.0)), Fx::from_f64(f64::tanh(-4.0)));
    }

    #[test]
    fn tanh_is_odd_shaped_and_monotone() {
        let t = Pla::tanh();
        assert!(t.eval(Fx::ZERO).to_f32().abs() < 0.01);
        let mut prev = t.eval(Fx::from_f32(-5.0));
        for i in -40..=40 {
            let y = t.eval(Fx::from_f32(i as f32 / 8.0));
            assert!(y >= prev - Fx::EPSILON, "tanh PLA not monotone at {i}");
            prev = y;
        }
    }

    #[test]
    fn identity_passes_values_through() {
        let id = Pla::identity();
        for v in [-100.0f32, -1.0, 0.0, 0.5, 100.0] {
            let x = Fx::from_f32(v);
            let y = id.eval(x);
            assert!((y.to_f32() - v).abs() < 0.1, "identity({v}) = {y}");
        }
    }

    #[test]
    fn custom_function_tabulation() {
        // The LRN decomposition needs x ↦ (k + αx)^(−β) style tables (§8.4).
        let f = |x: f64| (2.0 + 1e-4 * x).powf(-0.75);
        let pla = Pla::from_fn(f, 0.0, 64.0);
        let e = max_error(&pla, f, 0.0, 64.0);
        assert!(e < 0.01, "LRN power PLA error {e}");
    }

    #[test]
    fn sixteen_segments_exactly() {
        let t = Pla::tanh();
        assert_eq!(t.coefficients().count(), SEGMENTS);
        assert_eq!(SEGMENTS, 16);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_panics() {
        let _ = Pla::from_fn(|x| x, 1.0, 1.0);
    }

    #[test]
    fn domain_accessor() {
        let t = Pla::tanh();
        assert_eq!(t.domain(), (Fx::from_f32(-4.0), Fx::from_f32(4.0)));
    }
}
