//! 16-bit fixed-point arithmetic for the ShiDianNao reproduction.
//!
//! ShiDianNao (ISCA 2015, §5) uses 16-bit fixed-point operators throughout
//! both computational structures: "using 16-bit fixed-point operators brings
//! in negligible accuracy loss to neural networks" and "a 16-bit truncated
//! fixed-point multiplier is 6.10× smaller ... than a 32-bit floating-point
//! multiplier". This crate provides:
//!
//! * [`Fx`] — a Q7.8 16-bit two's-complement fixed-point number with
//!   saturating addition/subtraction and a truncated multiplier,
//! * [`Accum`] — the widened accumulator a processing element keeps while
//!   summing partial products (the product of two Q7.8 values is held at
//!   Q*.16 precision until read-out),
//! * [`Pla`] — the 16-segment piecewise-linear interpolator the ALU uses for
//!   activation functions (`f(x) = aᵢ·x + bᵢ` for `x ∈ [xᵢ, xᵢ₊₁]`, §5.2).
//!
//! # Examples
//!
//! ```
//! use shidiannao_fixed::{Fx, Accum, Pla};
//!
//! let a = Fx::from_f32(1.5);
//! let b = Fx::from_f32(-0.25);
//! assert_eq!((a * b).to_f32(), -0.375);
//!
//! let mut acc = Accum::new();
//! acc.mac(a, b);
//! acc.mac(a, a);
//! assert_eq!(acc.to_fx().to_f32(), -0.375 + 2.25);
//!
//! let tanh = Pla::tanh();
//! let y = tanh.eval(Fx::from_f32(0.5));
//! assert!((y.to_f32() - 0.5f32.tanh()).abs() < 0.02);
//! ```

mod accum;
mod pla;

pub use accum::Accum;
pub use pla::Pla;

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of fractional bits in [`Fx`] (Q7.8 format).
pub const FRAC_BITS: u32 = 8;

/// Scale factor between the integer representation and the real value.
pub const SCALE: f32 = (1i32 << FRAC_BITS) as f32;

/// A 16-bit two's-complement fixed-point number in Q7.8 format.
///
/// This is the datum ShiDianNao's datapath moves and computes on: neuron
/// activations and synaptic weights are both 16-bit fixed point (§5).
/// Arithmetic matches what small fixed-point hardware does:
///
/// * addition and subtraction **saturate** at the representable range,
/// * multiplication computes the full 32-bit product and **truncates**
///   (arithmetic shift right by [`FRAC_BITS`], then saturates to 16 bits),
/// * division computes `(a << FRAC_BITS) / b`, saturating.
///
/// The representable range is `[-128.0, 127.99609375]` with a resolution of
/// `2⁻⁸ = 0.00390625`.
///
/// # Examples
///
/// ```
/// use shidiannao_fixed::Fx;
/// let x = Fx::from_f32(2.0);
/// assert_eq!((x + x).to_f32(), 4.0);
/// assert_eq!(Fx::MAX + Fx::MAX, Fx::MAX); // saturates
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fx(i16);

impl Fx {
    /// The additive identity.
    pub const ZERO: Fx = Fx(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Fx = Fx(1 << FRAC_BITS);
    /// The largest representable value (`127.99609375`).
    pub const MAX: Fx = Fx(i16::MAX);
    /// The smallest representable value (`-128.0`).
    pub const MIN: Fx = Fx(i16::MIN);
    /// The smallest positive value (`2⁻⁸`).
    pub const EPSILON: Fx = Fx(1);

    /// Creates a value from its raw 16-bit two's-complement representation.
    #[inline]
    pub const fn from_bits(bits: i16) -> Fx {
        Fx(bits)
    }

    /// Returns the raw 16-bit two's-complement representation.
    #[inline]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating to the
    /// representable range. NaN maps to zero.
    #[inline]
    pub fn from_f32(v: f32) -> Fx {
        if v.is_nan() {
            return Fx::ZERO;
        }
        let scaled = (v * SCALE).round();
        Fx(scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16)
    }

    /// Converts from `f64`, rounding to nearest and saturating. NaN maps to
    /// zero.
    #[inline]
    pub fn from_f64(v: f64) -> Fx {
        if v.is_nan() {
            return Fx::ZERO;
        }
        let scaled = (v * SCALE as f64).round();
        Fx(scaled.clamp(i16::MIN as f64, i16::MAX as f64) as i16)
    }

    /// Converts to `f32` (exact: every `Fx` is representable in `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE
    }

    /// Converts to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Creates a value from a small integer, saturating (e.g. `Fx::from_int(3)`
    /// is `3.0`).
    #[inline]
    pub fn from_int(v: i32) -> Fx {
        let shifted = (v as i64) << FRAC_BITS;
        Fx(shifted.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// The truncated fixed-point multiply of the paper's PE datapath: full
    /// 32-bit product, arithmetic shift right by [`FRAC_BITS`], saturate to
    /// 16 bits.
    #[inline]
    pub fn saturating_mul(self, rhs: Fx) -> Fx {
        let prod = (self.0 as i32) * (rhs.0 as i32);
        let shifted = prod >> FRAC_BITS;
        Fx(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Fixed-point division as performed by the ALU (§5.2), saturating.
    ///
    /// Division by zero saturates to [`Fx::MAX`] or [`Fx::MIN`] depending on
    /// the sign of the dividend (`0 / 0` yields zero), mirroring a saturating
    /// hardware divider rather than panicking.
    #[inline]
    pub fn saturating_div(self, rhs: Fx) -> Fx {
        if rhs.0 == 0 {
            return match self.0.cmp(&0) {
                core::cmp::Ordering::Greater => Fx::MAX,
                core::cmp::Ordering::Less => Fx::MIN,
                core::cmp::Ordering::Equal => Fx::ZERO,
            };
        }
        let num = (self.0 as i32) << FRAC_BITS;
        let q = num / (rhs.0 as i32);
        Fx(q.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Absolute value, saturating (`|MIN|` yields [`Fx::MAX`]).
    #[inline]
    pub fn saturating_abs(self) -> Fx {
        Fx(self.0.saturating_abs())
    }

    /// Returns the larger of `self` and `rhs` (the max-pooling comparator).
    #[inline]
    pub fn max(self, rhs: Fx) -> Fx {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of `self` and `rhs`.
    #[inline]
    pub fn min(self, rhs: Fx) -> Fx {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// `true` if the value is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Element-wise square with the truncated multiplier (used by the LRN /
    /// LCN decompositions of §8.4).
    #[inline]
    pub fn squared(self) -> Fx {
        self.saturating_mul(self)
    }

    /// Requantizes the value as if it were stored with only
    /// `frac_bits ≤ 8` fractional bits and `total_bits ≤ 16` bits overall
    /// (round to nearest, saturate to the narrower range) — the §5
    /// storage/accuracy knob: narrower weights shrink the SB at the cost
    /// of precision.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits` is 0 or exceeds 16, or `frac_bits` exceeds
    /// both 8 and `total_bits − 1`.
    pub fn quantized(self, total_bits: u32, frac_bits: u32) -> Fx {
        assert!(
            (1..=16).contains(&total_bits) && frac_bits <= FRAC_BITS && frac_bits < total_bits,
            "unsupported quantization Q{total_bits}.{frac_bits}"
        );
        let shift = FRAC_BITS - frac_bits;
        // Round to nearest multiple of 2^shift (ties away from zero).
        let half = (1i32 << shift) >> 1;
        let v = self.0 as i32;
        let rounded = if v >= 0 { v + half } else { v - half } >> shift;
        let max = (1i32 << (total_bits - 1)) - 1;
        let clamped = rounded.clamp(-max - 1, max);
        Fx((clamped << shift) as i16)
    }
}

impl fmt::Debug for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx({})", self.to_f32())
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::UpperHex for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::Binary for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 as u16), f)
    }
}

impl Add for Fx {
    type Output = Fx;
    #[inline]
    fn add(self, rhs: Fx) -> Fx {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Fx {
    #[inline]
    fn add_assign(&mut self, rhs: Fx) {
        *self = *self + rhs;
    }
}

impl Sub for Fx {
    type Output = Fx;
    #[inline]
    fn sub(self, rhs: Fx) -> Fx {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Fx {
    #[inline]
    fn sub_assign(&mut self, rhs: Fx) {
        *self = *self - rhs;
    }
}

impl Mul for Fx {
    type Output = Fx;
    #[inline]
    fn mul(self, rhs: Fx) -> Fx {
        self.saturating_mul(rhs)
    }
}

impl Div for Fx {
    type Output = Fx;
    #[inline]
    fn div(self, rhs: Fx) -> Fx {
        self.saturating_div(rhs)
    }
}

impl Neg for Fx {
    type Output = Fx;
    #[inline]
    fn neg(self) -> Fx {
        Fx(self.0.saturating_neg())
    }
}

impl From<i8> for Fx {
    /// Converts an integer to its fixed-point value (`3i8` becomes `3.0`);
    /// every `i8` is representable.
    #[inline]
    fn from(v: i8) -> Fx {
        Fx((v as i16) << FRAC_BITS)
    }
}

impl core::iter::Sum for Fx {
    fn sum<I: Iterator<Item = Fx>>(iter: I) -> Fx {
        iter.fold(Fx::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Fx::ZERO.to_f32(), 0.0);
        assert_eq!(Fx::ONE.to_f32(), 1.0);
        assert_eq!(Fx::MAX.to_bits(), i16::MAX);
        assert_eq!(Fx::MIN.to_f32(), -128.0);
        assert_eq!(Fx::EPSILON.to_f32(), 1.0 / 256.0);
        assert_eq!(Fx::default(), Fx::ZERO);
    }

    #[test]
    fn roundtrip_exact_values() {
        for bits in [-32768i16, -1, 0, 1, 256, 12345, 32767] {
            let x = Fx::from_bits(bits);
            assert_eq!(Fx::from_f32(x.to_f32()), x);
            assert_eq!(Fx::from_f64(x.to_f64()), x);
        }
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 0.001953125 is exactly half an LSB; ties round away from zero.
        assert_eq!(Fx::from_f32(0.001953125).to_bits(), 1);
        assert_eq!(Fx::from_f32(0.0009).to_bits(), 0);
        assert_eq!(Fx::from_f32(-0.0009).to_bits(), 0);
    }

    #[test]
    fn from_f32_saturates_and_handles_nan() {
        assert_eq!(Fx::from_f32(1e9), Fx::MAX);
        assert_eq!(Fx::from_f32(-1e9), Fx::MIN);
        assert_eq!(Fx::from_f32(f32::NAN), Fx::ZERO);
        assert_eq!(Fx::from_f64(f64::INFINITY), Fx::MAX);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Fx::MAX + Fx::ONE, Fx::MAX);
        assert_eq!(Fx::MIN - Fx::ONE, Fx::MIN);
        assert_eq!(Fx::from_f32(1.5) + Fx::from_f32(2.25), Fx::from_f32(3.75));
    }

    #[test]
    fn mul_truncates_toward_negative_infinity() {
        // (-1 bit) * (1 bit) = -1/65536, which truncates (>>8) to -1 bit.
        let tiny = Fx::EPSILON;
        assert_eq!((-tiny * tiny).to_bits(), -1);
        // Positive underflow truncates to zero.
        assert_eq!((tiny * tiny).to_bits(), 0);
    }

    #[test]
    fn mul_saturates() {
        assert_eq!(Fx::from_f32(100.0) * Fx::from_f32(100.0), Fx::MAX);
        assert_eq!(Fx::from_f32(-100.0) * Fx::from_f32(100.0), Fx::MIN);
        assert_eq!(Fx::MIN * Fx::MIN, Fx::MAX);
    }

    #[test]
    fn div_matches_reference() {
        assert_eq!(Fx::from_f32(3.0) / Fx::from_f32(2.0), Fx::from_f32(1.5));
        assert_eq!(Fx::from_f32(1.0) / Fx::from_f32(-4.0), Fx::from_f32(-0.25));
    }

    #[test]
    fn div_by_zero_saturates() {
        assert_eq!(Fx::ONE / Fx::ZERO, Fx::MAX);
        assert_eq!(-Fx::ONE / Fx::ZERO, Fx::MIN);
        assert_eq!(Fx::ZERO / Fx::ZERO, Fx::ZERO);
    }

    #[test]
    fn neg_and_abs_saturate_at_min() {
        assert_eq!(-Fx::MIN, Fx::MAX);
        assert_eq!(Fx::MIN.saturating_abs(), Fx::MAX);
        assert_eq!(Fx::from_f32(-2.0).saturating_abs(), Fx::from_f32(2.0));
    }

    #[test]
    fn min_max_follow_ordering() {
        let a = Fx::from_f32(-1.0);
        let b = Fx::from_f32(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a < b);
    }

    #[test]
    fn sum_folds_saturating() {
        let xs = [Fx::from_f32(1.0); 4];
        let s: Fx = xs.iter().copied().sum();
        assert_eq!(s, Fx::from_f32(4.0));
        let big = [Fx::MAX; 3];
        let s: Fx = big.iter().copied().sum();
        assert_eq!(s, Fx::MAX);
    }

    #[test]
    fn formatting_is_never_empty() {
        assert_eq!(format!("{:?}", Fx::ZERO), "Fx(0)");
        assert_eq!(format!("{}", Fx::ONE), "1");
        assert_eq!(format!("{:x}", Fx::from_bits(-1)), "ffff");
        assert_eq!(format!("{:b}", Fx::from_bits(5)), "101");
    }

    #[test]
    fn from_i8_is_exact() {
        assert_eq!(Fx::from(-128i8).to_f32(), -128.0);
        assert_eq!(Fx::from(127i8).to_f32(), 127.0);
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Fx::from_int(3).to_f32(), 3.0);
        assert_eq!(Fx::from_int(1000), Fx::MAX);
        assert_eq!(Fx::from_int(-1000), Fx::MIN);
    }

    #[test]
    fn quantized_rounds_and_saturates() {
        // Q4.3 grid: multiples of 1/8, range [-1, 0.875] × 2^... : max
        // magnitude (2^3 − 1)/8 = 0.875, min −1.0.
        let q = |v: f32| Fx::from_f32(v).quantized(4, 3);
        assert_eq!(q(0.2), Fx::from_f32(0.25));
        assert_eq!(q(0.05), Fx::ZERO); // nearest 1/8 multiple is 0
        assert_eq!(q(5.0), Fx::from_f32(0.875), "saturates to the narrow range");
        assert_eq!(q(-5.0), Fx::from_f32(-1.0));
        // Full-width quantization is the identity.
        let x = Fx::from_bits(12345);
        assert_eq!(x.quantized(16, 8), x);
    }

    #[test]
    #[should_panic(expected = "unsupported quantization")]
    fn quantized_rejects_wide_formats() {
        let _ = Fx::ONE.quantized(17, 8);
    }

    #[test]
    fn fx_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fx>();
    }
}
