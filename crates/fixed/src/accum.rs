//! The widened multiply-accumulate register kept inside each PE.

use crate::{Fx, FRAC_BITS};

/// A widened accumulator for fixed-point multiply-accumulate chains.
///
/// Each ShiDianNao PE "accumulate\[s\] locally the resulting output feature
/// map" (§4): per cycle it multiplies a 16-bit neuron by a 16-bit synapse and
/// adds the product into a local register. Real MAC hardware keeps the full
/// 32-bit product plus guard bits; `Accum` models this with a 64-bit register
/// holding `2 × FRAC_BITS` fractional bits, so no precision is lost until the
/// final [`Accum::to_fx`] read-out, which truncates and saturates exactly
/// like the PE's output path.
///
/// # Examples
///
/// ```
/// use shidiannao_fixed::{Accum, Fx};
/// let mut acc = Accum::new();
/// for _ in 0..1000 {
///     acc.mac(Fx::from_f32(0.01), Fx::from_f32(0.01));
/// }
/// // 1000 × 0.0001 accumulated without intermediate truncation.
/// let exact = (Fx::from_f32(0.01).to_bits() as i64).pow(2) * 1000;
/// assert_eq!(acc.raw(), exact);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Accum(i64);

impl Accum {
    /// Creates an empty (zero) accumulator.
    #[inline]
    pub const fn new() -> Accum {
        Accum(0)
    }

    /// Creates an accumulator pre-loaded with a 16-bit value (e.g. a bias
    /// term loaded before the MAC chain starts).
    #[inline]
    pub fn from_fx(v: Fx) -> Accum {
        Accum((v.to_bits() as i64) << FRAC_BITS)
    }

    /// Multiply-accumulate: adds the full-precision product `a × b`.
    #[inline]
    pub fn mac(&mut self, a: Fx, b: Fx) {
        self.0 = self
            .0
            .saturating_add((a.to_bits() as i64) * (b.to_bits() as i64));
    }

    /// Adds a 16-bit value (aligned to the accumulator's Q*.16 format).
    #[inline]
    pub fn add_fx(&mut self, v: Fx) {
        self.0 = self.0.saturating_add((v.to_bits() as i64) << FRAC_BITS);
    }

    /// Adds a pre-summed raw Q*.16 partial sum (a chunked lane reduction
    /// of `a·b` products). Bit-identical to issuing the products through
    /// [`Accum::mac`] one at a time as long as no *intermediate* step
    /// saturates: every product fits in 31 bits and the NB/SB capacities
    /// bound chain length well below 2^20 terms, so partial sums stay
    /// under ~2^51 — far from the i64 edge. The debug assertion guards
    /// that envelope.
    #[inline]
    pub fn add_raw(&mut self, raw: i64) {
        debug_assert!(
            self.0.checked_add(raw).is_some(),
            "raw partial sum overflows the accumulator"
        );
        self.0 = self.0.saturating_add(raw);
    }

    /// Adds another accumulator (used when partial sums from sub-layers are
    /// merged, e.g. the LRN matrix-addition primitive).
    #[inline]
    pub fn add(&mut self, other: Accum) {
        self.0 = self.0.saturating_add(other.0);
    }

    /// Reads the accumulator out as a 16-bit value: truncates the extra
    /// fractional bits (arithmetic shift) and saturates, matching the PE
    /// output path that feeds NBout / the ALU.
    #[inline]
    pub fn to_fx(self) -> Fx {
        let shifted = self.0 >> FRAC_BITS;
        Fx::from_bits(shifted.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }

    /// Divides the accumulated sum by an element count and reads out 16
    /// bits — the running-mean operation used for average pooling over
    /// large windows and the LCN mean-of-δ term, where the element count
    /// can exceed the [`Fx`] integer range.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[inline]
    pub fn mean(self, count: usize) -> Fx {
        assert!(count > 0, "mean over zero elements");
        let shifted = (self.0 / count as i64) >> FRAC_BITS;
        Fx::from_bits(shifted.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }

    /// The raw Q*.16 register contents (for oracle tests).
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Resets the register to zero (a PE does this when it switches to a new
    /// output neuron).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// `true` if nothing has been accumulated (or the sum is exactly zero).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<Fx> for Accum {
    fn from(v: Fx) -> Accum {
        Accum::from_fx(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        assert!(Accum::new().is_zero());
        assert_eq!(Accum::new().to_fx(), Fx::ZERO);
        assert_eq!(Accum::default(), Accum::new());
    }

    #[test]
    fn mac_keeps_full_precision() {
        // Two sub-LSB products that would each truncate to zero in 16 bits
        // must survive in the accumulator and sum to one LSB.
        // q = 12 raw bits, so q·q = 144 raw Q*.16 units: below the 256-unit
        // LSB alone, but 288 ≥ 256 when two are accumulated.
        let q = Fx::from_bits(12);
        let mut acc = Accum::new();
        acc.mac(q, q);
        acc.mac(q, q);
        let mut one = Accum::new();
        one.mac(q, q);
        assert_eq!(one.to_fx(), Fx::ZERO);
        assert_eq!(acc.to_fx(), Fx::EPSILON);
    }

    #[test]
    fn from_fx_roundtrips() {
        for v in [Fx::MIN, Fx::from_f32(-1.5), Fx::ZERO, Fx::ONE, Fx::MAX] {
            assert_eq!(Accum::from_fx(v).to_fx(), v);
            assert_eq!(Accum::from(v).to_fx(), v);
        }
    }

    #[test]
    fn to_fx_saturates() {
        let mut acc = Accum::new();
        for _ in 0..100 {
            acc.mac(Fx::from_f32(100.0), Fx::from_f32(100.0));
        }
        assert_eq!(acc.to_fx(), Fx::MAX);
        let mut neg = Accum::new();
        for _ in 0..100 {
            neg.mac(Fx::from_f32(-100.0), Fx::from_f32(100.0));
        }
        assert_eq!(neg.to_fx(), Fx::MIN);
    }

    #[test]
    fn add_fx_aligns_with_mac() {
        // bias + w·x computed two ways must agree.
        let bias = Fx::from_f32(0.5);
        let (w, x) = (Fx::from_f32(2.0), Fx::from_f32(3.0));
        let mut a = Accum::from_fx(bias);
        a.mac(w, x);
        let mut b = Accum::new();
        b.mac(w, x);
        b.add_fx(bias);
        assert_eq!(a, b);
        assert_eq!(a.to_fx(), Fx::from_f32(6.5));
    }

    #[test]
    fn add_merges_partial_sums() {
        let mut a = Accum::new();
        a.mac(Fx::ONE, Fx::ONE);
        let mut b = Accum::new();
        b.mac(Fx::from_f32(2.0), Fx::ONE);
        a.add(b);
        assert_eq!(a.to_fx(), Fx::from_f32(3.0));
    }

    #[test]
    fn clear_resets() {
        let mut a = Accum::from_fx(Fx::ONE);
        a.clear();
        assert!(a.is_zero());
    }

    #[test]
    fn truncation_matches_fx_multiplier_for_single_product() {
        // For a single product, Accum::to_fx must agree with Fx::mul
        // (both truncate the same Q*.16 value).
        for (a, b) in [
            (Fx::from_f32(1.5), Fx::from_f32(-2.25)),
            (Fx::EPSILON, -Fx::EPSILON),
            (Fx::from_f32(-0.7), Fx::from_f32(0.3)),
        ] {
            let mut acc = Accum::new();
            acc.mac(a, b);
            assert_eq!(acc.to_fx(), a * b, "a={a:?} b={b:?}");
        }
    }
}
