//! Property-based tests for the fixed-point substrate, checked against
//! widened-integer and floating-point oracles.

use proptest::prelude::*;
use shidiannao_fixed::{Accum, Fx, Pla, FRAC_BITS};

fn any_fx() -> impl Strategy<Value = Fx> {
    any::<i16>().prop_map(Fx::from_bits)
}

proptest! {
    #[test]
    fn add_matches_saturating_i32_oracle(a in any_fx(), b in any_fx()) {
        let oracle = (a.to_bits() as i32 + b.to_bits() as i32)
            .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!((a + b).to_bits(), oracle);
    }

    #[test]
    fn sub_matches_saturating_i32_oracle(a in any_fx(), b in any_fx()) {
        let oracle = (a.to_bits() as i32 - b.to_bits() as i32)
            .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!((a - b).to_bits(), oracle);
    }

    #[test]
    fn mul_matches_shifted_i32_oracle(a in any_fx(), b in any_fx()) {
        let oracle = ((a.to_bits() as i32 * b.to_bits() as i32) >> FRAC_BITS)
            .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!((a * b).to_bits(), oracle);
    }

    #[test]
    fn mul_is_commutative(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_is_commutative(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_close_to_real_product_when_in_range(a in -100i32..100, b in -100i32..100) {
        // Products well inside the representable range track the real
        // product to within one truncation LSB.
        let (fa, fb) = (a as f32 / 16.0, b as f32 / 16.0);
        let x = Fx::from_f32(fa) * Fx::from_f32(fb);
        prop_assert!((x.to_f32() - fa * fb).abs() <= 1.0 / 256.0 + 1e-6);
    }

    #[test]
    fn div_matches_i32_oracle(a in any_fx(), b in any_fx()) {
        prop_assume!(b != Fx::ZERO);
        let oracle = (((a.to_bits() as i32) << FRAC_BITS) / b.to_bits() as i32)
            .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!((a / b).to_bits(), oracle);
    }

    #[test]
    fn ordering_matches_real_ordering(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a < b, a.to_f32() < b.to_f32());
    }

    #[test]
    fn roundtrip_is_identity(a in any_fx()) {
        prop_assert_eq!(Fx::from_f32(a.to_f32()), a);
    }

    #[test]
    fn accum_matches_i64_oracle(pairs in proptest::collection::vec((any_fx(), any_fx()), 0..64)) {
        let mut acc = Accum::new();
        let mut oracle: i64 = 0;
        for &(a, b) in &pairs {
            acc.mac(a, b);
            oracle += a.to_bits() as i64 * b.to_bits() as i64;
        }
        prop_assert_eq!(acc.raw(), oracle);
        let expect = (oracle >> FRAC_BITS).clamp(i16::MIN as i64, i16::MAX as i64) as i16;
        prop_assert_eq!(acc.to_fx().to_bits(), expect);
    }

    #[test]
    fn accum_order_independent(pairs in proptest::collection::vec((any_fx(), any_fx()), 0..32)) {
        // Without saturation events, accumulation order must not matter —
        // this is what lets the simulator sweep kernel windows in any order.
        let mut fwd = Accum::new();
        for &(a, b) in &pairs { fwd.mac(a, b); }
        let mut rev = Accum::new();
        for &(a, b) in pairs.iter().rev() { rev.mac(a, b); }
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn pla_tanh_bounded(a in any_fx()) {
        let y = Pla::tanh().eval(a).to_f32();
        prop_assert!((-1.01..=1.01).contains(&y));
    }

    #[test]
    fn pla_sigmoid_bounded(a in any_fx()) {
        let y = Pla::sigmoid().eval(a).to_f32();
        prop_assert!((-0.01..=1.01).contains(&y));
    }

    #[test]
    fn pla_tanh_accurate_in_domain(raw in -1024i16..1024) {
        let x = Fx::from_bits(raw);
        let y = Pla::tanh().eval(x).to_f64();
        prop_assert!((y - x.to_f64().tanh()).abs() < 0.02);
    }
}
