//! The video front-end: deterministic multi-stream video sources and
//! per-region frame differencing.
//!
//! ShiDianNao's argument — sit next to the sensor, skip the DRAM round
//! trip — extends in time: consecutive video frames share most of their
//! pixels, so most region tiles are unchanged and recomputing them
//! wastes exactly the cycles and nanojoules the architecture saves.
//! This module provides the sensor half of that temporal datapath:
//!
//! * [`VideoSensor`] — a seed-replayable synthetic video camera. Unlike
//!   [`SyntheticSensor`](crate::SyntheticSensor) (whose hash re-rolls
//!   every pixel every frame), it renders a *persistent* world texture
//!   through a camera [`Motion`] (static / panning / jittered), with an
//!   optional [`MovingObject`] so even a static scene has a small dirty
//!   set. It implements [`FrameSource`], so it composes with
//!   [`FaultySensor`](crate::FaultySensor) like any other camera.
//! * [`FrameDelta`] — the per-region frame differencer: an 8-bit
//!   comparator over the row buffer's previous-frame band, marking a
//!   region dirty when any pixel moved by at least the configured
//!   threshold. A threshold of `0` marks every region dirty (the
//!   degenerate frame-independent schedule).
//! * [`DirtyBitmap`] / [`DirtyMap`] — the per-stream dirty-region
//!   bitmap each observed frame produces, bit-packed because a VGA
//!   stream carries 1 073 regions per frame.
//!
//! Everything is a pure function of `(seed, frame index)`: two sensors
//! built from the same parameters stream byte-identical frames, and the
//! dirty set is a pure function of `(scene, threshold)` — the property
//! the video pipeline's determinism certificate rests on.

use crate::{Frame, FrameSource, RegionGrid, StreamError};
use shidiannao_tensor::FeatureMap;

/// Camera motion of a [`VideoSensor`] scene.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Motion {
    /// Static camera: background pixels are identical every frame.
    Static,
    /// Panning camera: the view shifts `(dx, dy)` world pixels per
    /// frame, so every background pixel changes every frame.
    Pan {
        /// Horizontal world pixels per frame.
        dx: i32,
        /// Vertical world pixels per frame.
        dy: i32,
    },
    /// Jittering camera: each frame views the world through a seeded
    /// shake offset drawn from `[-amp, amp]` on both axes.
    Jitter {
        /// Maximum shake amplitude in pixels.
        amp: u32,
    },
}

/// A deterministic moving object: a bright textured block orbiting the
/// frame in screen space, touching a handful of regions per frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MovingObject {
    /// Object dimensions `(width, height)` in pixels.
    pub size: (usize, usize),
    /// Screen pixels the object advances per frame on each axis.
    pub speed: (usize, usize),
}

impl MovingObject {
    /// Where the object sits at `frame`, inside a `(w, h)` screen.
    fn origin(&self, frame: u64, (w, h): (usize, usize)) -> (usize, usize) {
        let span_x = (w - self.size.0 + 1) as u64;
        let span_y = (h - self.size.1 + 1) as u64;
        (
            ((frame * self.speed.0 as u64) % span_x) as usize,
            ((frame * self.speed.1 as u64) % span_y) as usize,
        )
    }
}

/// The persistent world texture: a hash of `(seed, world x, world y)`
/// only — no frame term, so a pixel looked at twice is the same pixel.
fn world_pixel(seed: u64, wx: i64, wy: i64) -> u8 {
    let mut v = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((wx as u64) << 32) ^ (wy as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    v ^= v >> 33;
    v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    v ^= v >> 33;
    (v & 0xFF) as u8
}

/// A deterministic synthetic video camera (see [the module](self)).
///
/// # Examples
///
/// ```
/// use shidiannao_sensor::{FrameSource, Motion, MovingObject, VideoSensor};
/// let mut cam = VideoSensor::new(64, 48, 7, Motion::Static)
///     .with_object(MovingObject { size: (8, 8), speed: (3, 2) });
/// let a = cam.next_frame();
/// let b = cam.next_frame();
/// // Static background, moving object: the frames differ, but only
/// // around the object.
/// assert_ne!(a.pixels(), b.pixels());
/// ```
#[derive(Clone, Debug)]
pub struct VideoSensor {
    width: usize,
    height: usize,
    seed: u64,
    motion: Motion,
    object: Option<MovingObject>,
    next_index: u64,
}

impl VideoSensor {
    /// Creates a camera over a fresh world.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(width: usize, height: usize, seed: u64, motion: Motion) -> VideoSensor {
        assert!(width > 0 && height > 0, "sensor must be non-empty");
        VideoSensor {
            width,
            height,
            seed,
            motion,
            object: None,
            next_index: 0,
        }
    }

    /// Adds a moving object to the scene.
    ///
    /// # Panics
    ///
    /// Panics if the object does not fit inside the frame.
    pub fn with_object(mut self, object: MovingObject) -> VideoSensor {
        assert!(
            object.size.0 <= self.width && object.size.1 <= self.height,
            "object exceeds frame"
        );
        assert!(
            object.size.0 > 0 && object.size.1 > 0,
            "object must be non-empty"
        );
        self.object = Some(object);
        self
    }

    /// The camera motion.
    pub fn motion(&self) -> Motion {
        self.motion
    }

    /// The scene's moving object, if any.
    pub fn object(&self) -> Option<MovingObject> {
        self.object
    }

    /// The world-space offset the camera views frame `frame` through.
    fn view_offset(&self, frame: u64) -> (i64, i64) {
        match self.motion {
            Motion::Static => (0, 0),
            Motion::Pan { dx, dy } => (dx as i64 * frame as i64, dy as i64 * frame as i64),
            Motion::Jitter { amp } => {
                if amp == 0 {
                    return (0, 0);
                }
                // One splitmix draw per frame, split into two axes.
                let mut v = (self.seed ^ frame.wrapping_mul(0xA24B_AED4_963E_E407))
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                v ^= v >> 31;
                v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                v ^= v >> 29;
                let span = 2 * amp as u64 + 1;
                (
                    (v % span) as i64 - amp as i64,
                    ((v >> 32) % span) as i64 - amp as i64,
                )
            }
        }
    }
}

impl FrameSource for VideoSensor {
    fn next_frame(&mut self) -> Frame {
        let index = self.next_index;
        self.next_index += 1;
        let (ox, oy) = self.view_offset(index);
        let seed = self.seed;
        let object = self
            .object
            .map(|o| (o, o.origin(index, (self.width, self.height))));
        Frame::new(
            index,
            FeatureMap::from_fn(self.width, self.height, |x, y| {
                if let Some((o, (px, py))) = object {
                    if x >= px && x < px + o.size.0 && y >= py && y < py + o.size.1 {
                        // Bright rigid texture in object-local
                        // coordinates, distinct from any background value
                        // (backgrounds stay below 0xC0 only by chance, so
                        // the high bits just bias the object bright).
                        return 0xC0
                            | (world_pixel(seed ^ 0x0B1E, (x - px) as i64, (y - py) as i64)
                                & 0x3F);
                    }
                }
                world_pixel(seed, x as i64 + ox, y as i64 + oy)
            }),
        )
    }

    fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }
}

/// A bit-packed per-region dirty set (one bit per region of a
/// [`RegionGrid`], row-major).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DirtyBitmap {
    len: usize,
    words: Vec<u64>,
}

impl DirtyBitmap {
    /// An all-clean bitmap over `len` regions.
    pub fn new(len: usize) -> DirtyBitmap {
        DirtyBitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// An all-dirty bitmap over `len` regions.
    pub fn all_dirty(len: usize) -> DirtyBitmap {
        let mut b = DirtyBitmap::new(len);
        for i in 0..len {
            b.set(i, true);
        }
        b
    }

    /// Regions tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitmap tracks no regions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks region `i` dirty or clean.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, dirty: bool) {
        assert!(i < self.len, "region {i} out of {}", self.len);
        let mask = 1u64 << (i % 64);
        if dirty {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Whether region `i` is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "region {i} out of {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Dirty regions.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when every region is dirty.
    pub fn all(&self) -> bool {
        self.count() == self.len
    }

    /// Iterates the per-region dirty bits, row-major.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

/// What one observed frame looked like to the differencer: the frame's
/// dirty-region bitmap plus the comparator work it took to produce it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyMap {
    frame_index: u64,
    bitmap: DirtyBitmap,
    compared_pixels: u64,
}

impl DirtyMap {
    /// The observed frame's sequence number.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// The per-region dirty bits.
    pub fn bitmap(&self) -> &DirtyBitmap {
        &self.bitmap
    }

    /// Whether region `i` is dirty.
    pub fn is_dirty(&self, i: usize) -> bool {
        self.bitmap.get(i)
    }

    /// Dirty regions.
    pub fn dirty_count(&self) -> usize {
        self.bitmap.count()
    }

    /// Regions tracked.
    pub fn regions(&self) -> usize {
        self.bitmap.len()
    }

    /// 8-bit pixel comparisons performed (0 for the first frame, which
    /// has nothing to compare against and is all-dirty by definition).
    pub fn compared_pixels(&self) -> u64 {
        self.compared_pixels
    }
}

/// The per-region frame differencer: holds the previous frame's pixels
/// (the row-buffer band the §10.2 front-end already keeps) and marks a
/// region dirty when any of its pixels changed by at least `threshold`
/// grey levels.
///
/// The first observed frame is always all-dirty; a `threshold` of `0`
/// marks every region dirty on every frame (`|Δ| ≥ 0` always holds), so
/// the motion gate degenerates to frame-independent processing.
#[derive(Clone, Debug)]
pub struct FrameDelta {
    grid: RegionGrid,
    threshold: u8,
    prev: Option<FeatureMap<u8>>,
}

impl FrameDelta {
    /// Creates a differencer over `grid` with the given dirty threshold.
    pub fn new(grid: RegionGrid, threshold: u8) -> FrameDelta {
        FrameDelta {
            grid,
            threshold,
            prev: None,
        }
    }

    /// The grid regions are diffed against.
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// The dirty threshold in grey levels.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// Forgets the previous frame: the next observation is all-dirty.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Diffs `frame` against the previously observed one and records it
    /// as the new reference.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::FrameMismatch`] when the frame's
    /// dimensions differ from the grid's.
    pub fn observe(&mut self, frame: &Frame) -> Result<DirtyMap, StreamError> {
        let (fw, fh) = self.grid.frame_dims();
        if frame.dims() != (fw, fh) {
            return Err(StreamError::FrameMismatch {
                frame: frame.dims(),
                grid: (fw, fh),
            });
        }
        let regions = self.grid.count();
        let (rw, rh) = self.grid.region_dims();
        let map = match &self.prev {
            None => DirtyMap {
                frame_index: frame.index(),
                bitmap: DirtyBitmap::all_dirty(regions),
                compared_pixels: 0,
            },
            Some(prev) => {
                let cur = frame.pixels();
                let mut bitmap = DirtyBitmap::new(regions);
                let mut compared = 0u64;
                for (i, (x0, y0)) in self.grid.origins().enumerate() {
                    let mut dirty = self.threshold == 0;
                    'scan: for y in y0..y0 + rh {
                        for x in x0..x0 + rw {
                            if cur[(x, y)].abs_diff(prev[(x, y)]) >= self.threshold {
                                dirty = true;
                                break 'scan;
                            }
                        }
                    }
                    // The comparator scans the whole region even when
                    // the first changed pixel settles the verdict — a
                    // hardware comparator reads the full band at line
                    // rate, it does not early-exit.
                    compared += (rw * rh) as u64;
                    bitmap.set(i, dirty);
                }
                DirtyMap {
                    frame_index: frame.index(),
                    bitmap,
                    compared_pixels: compared,
                }
            }
        };
        self.prev = Some(frame.pixels().clone());
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultySensor, SyntheticSensor};
    use shidiannao_faults::FaultPlan;

    fn grid() -> RegionGrid {
        RegionGrid::new((64, 48), (16, 16), (16, 16))
    }

    #[test]
    fn static_scene_repeats_exactly() {
        let mut cam = VideoSensor::new(64, 48, 7, Motion::Static);
        let a = cam.next_frame();
        let b = cam.next_frame();
        assert_eq!(a.pixels(), b.pixels());
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn video_sensor_is_seed_replayable() {
        for motion in [
            Motion::Static,
            Motion::Pan { dx: 2, dy: -1 },
            Motion::Jitter { amp: 2 },
        ] {
            let mut a = VideoSensor::new(48, 32, 11, motion).with_object(MovingObject {
                size: (6, 6),
                speed: (3, 2),
            });
            let mut b = a.clone();
            for _ in 0..4 {
                assert_eq!(a.next_frame(), b.next_frame(), "{motion:?}");
            }
        }
    }

    #[test]
    fn panning_moves_every_pixel_and_jitter_shakes() {
        let mut pan = VideoSensor::new(32, 32, 3, Motion::Pan { dx: 1, dy: 0 });
        let a = pan.next_frame();
        let b = pan.next_frame();
        // A 1-pixel pan shifts the texture: column x of frame 1 equals
        // column x+1 of frame 0.
        assert_eq!(b.pixels()[(0, 5)], a.pixels()[(1, 5)]);

        let mut jit = VideoSensor::new(32, 32, 3, Motion::Jitter { amp: 1 });
        let frames: Vec<_> = (0..4).map(|_| jit.next_frame()).collect();
        assert!(
            frames.windows(2).any(|w| w[0].pixels() != w[1].pixels()),
            "jitter never moved"
        );
    }

    #[test]
    fn moving_object_dirties_few_regions_of_a_static_scene() {
        let mut cam = VideoSensor::new(64, 48, 7, Motion::Static).with_object(MovingObject {
            size: (8, 8),
            speed: (5, 3),
        });
        let mut delta = FrameDelta::new(grid(), 1);
        let first = delta.observe(&cam.next_frame()).unwrap();
        assert!(first.bitmap().all(), "first frame is all-dirty");
        assert_eq!(first.compared_pixels(), 0);
        let second = delta.observe(&cam.next_frame()).unwrap();
        let dirty = second.dirty_count();
        assert!(dirty > 0, "the object moved");
        assert!(
            dirty < second.regions(),
            "a static background stays mostly clean ({dirty}/{})",
            second.regions()
        );
        assert_eq!(second.compared_pixels(), (grid().count() * 16 * 16) as u64);
    }

    #[test]
    fn threshold_zero_marks_everything_dirty() {
        let mut cam = VideoSensor::new(64, 48, 7, Motion::Static);
        let mut delta = FrameDelta::new(grid(), 0);
        let _ = delta.observe(&cam.next_frame()).unwrap();
        let second = delta.observe(&cam.next_frame()).unwrap();
        assert!(second.bitmap().all(), "threshold 0 is frame-independent");
    }

    #[test]
    fn identical_frames_are_clean_above_threshold_zero() {
        let mut cam = VideoSensor::new(64, 48, 7, Motion::Static);
        let mut delta = FrameDelta::new(grid(), 1);
        let _ = delta.observe(&cam.next_frame()).unwrap();
        let second = delta.observe(&cam.next_frame()).unwrap();
        assert_eq!(second.dirty_count(), 0);
    }

    #[test]
    fn dirty_set_is_a_pure_function_of_seed_and_threshold() {
        for threshold in [0u8, 1, 16] {
            let run = |seed: u64| -> Vec<DirtyMap> {
                let mut cam = VideoSensor::new(64, 48, seed, Motion::Jitter { amp: 1 })
                    .with_object(MovingObject {
                        size: (8, 8),
                        speed: (3, 2),
                    });
                let mut delta = FrameDelta::new(grid(), threshold);
                (0..4)
                    .map(|_| delta.observe(&cam.next_frame()).unwrap())
                    .collect()
            };
            assert_eq!(run(5), run(5), "threshold {threshold}");
        }
    }

    #[test]
    fn frame_delta_rejects_mismatched_frames() {
        let mut cam = VideoSensor::new(32, 32, 7, Motion::Static);
        let mut delta = FrameDelta::new(grid(), 1);
        let err = delta.observe(&cam.next_frame()).unwrap_err();
        assert!(matches!(err, StreamError::FrameMismatch { .. }));
    }

    #[test]
    fn reset_forgets_the_reference_frame() {
        let mut cam = VideoSensor::new(64, 48, 7, Motion::Static);
        let mut delta = FrameDelta::new(grid(), 1);
        let _ = delta.observe(&cam.next_frame()).unwrap();
        delta.reset();
        let again = delta.observe(&cam.next_frame()).unwrap();
        assert!(again.bitmap().all());
    }

    #[test]
    fn video_sensor_composes_with_faulty_sensor() {
        use shidiannao_faults::FaultConfig;
        let cfg = FaultConfig {
            seed: 99,
            scanline_rate: 0.2,
            ..FaultConfig::zero()
        };
        let cam = VideoSensor::new(32, 24, 5, Motion::Static);
        let mut a = FaultySensor::new(cam.clone(), FaultPlan::new(cfg));
        let mut b = FaultySensor::new(cam, FaultPlan::new(cfg));
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        assert!(a.dropped_rows() + a.corrupted_rows() > 0);
    }

    #[test]
    fn bitmap_packs_and_counts() {
        let mut b = DirtyBitmap::new(130);
        assert_eq!(b.count(), 0);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert_eq!(b.count(), 3);
        assert!(b.get(64) && !b.get(63));
        b.set(64, false);
        assert_eq!(b.count(), 2);
        assert!(!b.all());
        assert!(DirtyBitmap::all_dirty(130).all());
        assert_eq!(b.iter().filter(|&d| d).count(), 2);
        assert!(!b.is_empty() && DirtyBitmap::new(0).is_empty());
    }

    #[test]
    fn video_and_synthetic_sensors_share_the_frame_contract() {
        // Both sources produce frames the same grid machinery consumes.
        let mut video = VideoSensor::new(64, 48, 7, Motion::Static);
        let mut synth = SyntheticSensor::new(64, 48, 7);
        let g = grid();
        assert_eq!(
            g.try_stream(&video.next_frame(), 1).unwrap().count(),
            g.try_stream(&synth.next_frame(), 1).unwrap().count()
        );
    }
}
