//! The CMOS/CCD sensor streaming front-end (§2, §10.2).
//!
//! ShiDianNao sits "on the streaming path from sensors to hosts": frames
//! arrive as scanline streams, are buffered a few rows at a time (no
//! full-frame storage — commercial image processors hold ~256 KB, §2),
//! and the recognition CNN runs over overlapping regions of each frame.
//! §10.2 computes the resulting frame rate: a 640 × 480 frame holds
//! `⌈(640−64)/16+1⌉ × ⌈(480−36)/16+1⌉ = 1 073` overlapping 64 × 36
//! regions for the ConvNN benchmark, and at 0.047 ms per region the
//! accelerator sustains 20 fps.
//!
//! This crate provides:
//!
//! * [`SyntheticSensor`] — a deterministic frame generator standing in for
//!   sensor hardware we do not have (the substitution preserves the
//!   streaming geometry, which is all §10.2 depends on),
//! * [`RegionGrid`] / [`RegionStream`] — the overlapping-region tiling,
//! * [`RowBuffer`] — the partial-frame row buffer and its §10.2 sizing
//!   argument ("a few tens of pixel rows"),
//! * [`frames_per_second`] — the fps arithmetic,
//! * [`video`] — the temporal front-end: deterministic video sources
//!   ([`VideoSensor`]) and the per-region frame differencer
//!   ([`FrameDelta`]) producing per-stream dirty-region bitmaps.

// Streaming paths report failures as typed [`StreamError`]s; the
// `assert!`-based contract checks on the legacy panicking APIs remain.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use core::fmt;
use shidiannao_faults::{FaultPlan, ScanlineFault};
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};

pub mod video;

pub use video::{DirtyBitmap, DirtyMap, FrameDelta, Motion, MovingObject, VideoSensor};

/// A failure on the sensor streaming path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// A requested region does not fit inside the frame.
    RegionOutOfBounds {
        /// Region origin `(x0, y0)`.
        origin: (usize, usize),
        /// Region dimensions `(w, h)`.
        region: (usize, usize),
        /// Frame dimensions `(width, height)`.
        frame: (usize, usize),
    },
    /// A frame's dimensions do not match the grid it is streamed through.
    FrameMismatch {
        /// The frame's dimensions.
        frame: (usize, usize),
        /// The grid's expected frame dimensions.
        grid: (usize, usize),
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::RegionOutOfBounds {
                origin: (x0, y0),
                region: (w, h),
                frame: (fw, fh),
            } => write!(f, "region {w}x{h}@({x0},{y0}) exceeds frame {fw}x{fh}"),
            StreamError::FrameMismatch { frame, grid } => write!(
                f,
                "frame {}x{} does not match the grid's {}x{}",
                frame.0, frame.1, grid.0, grid.1
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// A captured frame: one 8-bit grayscale pixel array plus its sequence
/// number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    index: u64,
    pixels: FeatureMap<u8>,
}

impl Frame {
    /// Wraps a pixel array as frame number `index`.
    pub fn new(index: u64, pixels: FeatureMap<u8>) -> Frame {
        Frame { index, pixels }
    }

    /// The frame's sequence number.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Frame dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.pixels.dims()
    }

    /// The raw pixels.
    pub fn pixels(&self) -> &FeatureMap<u8> {
        &self.pixels
    }

    /// Extracts a region as a single-map fixed-point stack, pixels scaled
    /// to `[0, 1)` — the format NBin receives.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the frame. [`Frame::try_region`] is
    /// the non-panicking variant.
    #[allow(clippy::panic)]
    pub fn region(&self, origin: (usize, usize), dims: (usize, usize)) -> MapStack<Fx> {
        match self.try_region(origin, dims) {
            Ok(stack) => stack,
            Err(e) => panic!("{e}"),
        }
    }

    /// Extracts a region, or reports [`StreamError::RegionOutOfBounds`] if
    /// it does not fit inside the frame.
    pub fn try_region(
        &self,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
    ) -> Result<MapStack<Fx>, StreamError> {
        let (fw, fh) = self.dims();
        if x0 + w > fw || y0 + h > fh {
            return Err(StreamError::RegionOutOfBounds {
                origin: (x0, y0),
                region: (w, h),
                frame: (fw, fh),
            });
        }
        let map = FeatureMap::from_fn(w, h, |x, y| {
            Fx::from_f32(self.pixels[(x0 + x, y0 + y)] as f32 / 256.0)
        });
        let mut stack = MapStack::new(w, h);
        stack.push(map).expect("region map matches its own stack");
        Ok(stack)
    }

    /// Like [`Frame::region`] but replicated across `maps` identical input
    /// maps (for benchmarks with multi-channel inputs, e.g. ConvNN's 3).
    #[allow(clippy::panic)]
    pub fn region_stacked(
        &self,
        origin: (usize, usize),
        dims: (usize, usize),
        maps: usize,
    ) -> MapStack<Fx> {
        match self.try_region_stacked(origin, dims, maps) {
            Ok(stack) => stack,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Frame::region_stacked`].
    pub fn try_region_stacked(
        &self,
        origin: (usize, usize),
        dims: (usize, usize),
        maps: usize,
    ) -> Result<MapStack<Fx>, StreamError> {
        let single = self.try_region(origin, dims)?;
        let mut stack = MapStack::new(dims.0, dims.1);
        for _ in 0..maps {
            stack.push(single[0].clone()).expect("same dims");
        }
        Ok(stack)
    }
}

/// Anything that produces frames — implemented by [`SyntheticSensor`] and
/// by whatever real capture source a deployment wires in.
pub trait FrameSource {
    /// Produces the next frame.
    fn next_frame(&mut self) -> Frame;

    /// Frame dimensions `(width, height)`.
    fn dims(&self) -> (usize, usize);
}

/// A deterministic synthetic sensor.
///
/// Stands in for the CMOS/CCD hardware: pixel values come from a cheap
/// hash of `(seed, frame, x, y)` so every run streams the same scene.
///
/// # Examples
///
/// ```
/// use shidiannao_sensor::{FrameSource, SyntheticSensor};
/// let mut cam = SyntheticSensor::vga(7);
/// let f = cam.next_frame();
/// assert_eq!(f.dims(), (640, 480));
/// assert_eq!(cam.next_frame().index(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticSensor {
    width: usize,
    height: usize,
    seed: u64,
    next_index: u64,
}

impl SyntheticSensor {
    /// Creates a sensor of arbitrary resolution.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(width: usize, height: usize, seed: u64) -> SyntheticSensor {
        assert!(width > 0 && height > 0, "sensor must be non-empty");
        SyntheticSensor {
            width,
            height,
            seed,
            next_index: 0,
        }
    }

    /// The 640 × 480 sensor of §10.2 ("usually images are resized in
    /// certain range before processing").
    pub fn vga(seed: u64) -> SyntheticSensor {
        SyntheticSensor::new(640, 480, seed)
    }
}

fn hash_pixel(seed: u64, frame: u64, x: usize, y: usize) -> u8 {
    let mut v = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(frame.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(((x as u64) << 32) | y as u64);
    v ^= v >> 33;
    v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    v ^= v >> 33;
    (v & 0xFF) as u8
}

impl FrameSource for SyntheticSensor {
    fn next_frame(&mut self) -> Frame {
        let index = self.next_index;
        self.next_index += 1;
        let seed = self.seed;
        Frame::new(
            index,
            FeatureMap::from_fn(self.width, self.height, |x, y| {
                hash_pixel(seed, index, x, y)
            }),
        )
    }

    fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }
}

/// A [`FrameSource`] wrapper that injects deterministic scanline faults
/// from a [`FaultPlan`] — the sensor-link half of the fault model.
///
/// Real sensor links drop or corrupt whole scanlines (a missed HSYNC, a
/// burst on the serial link), not individual pixels. Per the plan:
///
/// * a **dropped** row repeats the previous delivered row (what a
///   line-buffer front-end holds when the line never arrives); row 0
///   drops to black,
/// * a **corrupted** row XORs a non-zero pattern over a burst of pixels.
///
/// The same `(plan, frame index, row)` always produces the same fault, so
/// faulty streams are replayable from the seed alone.
#[derive(Clone, Debug)]
pub struct FaultySensor<S: FrameSource> {
    inner: S,
    plan: FaultPlan,
    dropped: u64,
    corrupted: u64,
}

impl<S: FrameSource> FaultySensor<S> {
    /// Wraps a source with a fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> FaultySensor<S> {
        FaultySensor {
            inner,
            plan,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Scanlines dropped so far.
    pub fn dropped_rows(&self) -> u64 {
        self.dropped
    }

    /// Scanlines corrupted so far.
    pub fn corrupted_rows(&self) -> u64 {
        self.corrupted
    }

    fn apply_faults(&mut self, frame: Frame) -> Frame {
        if !self.plan.has_scanline_faults() {
            return frame;
        }
        let (w, h) = frame.dims();
        let index = frame.index();
        let mut pixels = frame.pixels().clone();
        for y in 0..h {
            match self.plan.scanline_fault(index, y as u64) {
                None => {}
                Some(ScanlineFault::Dropped) => {
                    self.dropped += 1;
                    for x in 0..w {
                        pixels[(x, y)] = if y == 0 { 0 } else { pixels[(x, y - 1)] };
                    }
                }
                Some(ScanlineFault::Corrupted { xor, burst }) => {
                    self.corrupted += 1;
                    let start = (burst as usize) % w;
                    let len = ((burst >> 16) as usize % w).max(1);
                    for x in start..(start + len).min(w) {
                        pixels[(x, y)] ^= xor;
                    }
                }
            }
        }
        Frame::new(index, pixels)
    }
}

impl<S: FrameSource> FrameSource for FaultySensor<S> {
    fn next_frame(&mut self) -> Frame {
        let frame = self.inner.next_frame();
        self.apply_faults(frame)
    }

    fn dims(&self) -> (usize, usize) {
        self.inner.dims()
    }
}

/// The overlapping-region tiling of §10.2: regions of `region` size slide
/// by `stride`, with a final clipped placement so the frame edge is
/// covered (the paper's ceiling division).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionGrid {
    frame: (usize, usize),
    region: (usize, usize),
    stride: (usize, usize),
}

impl RegionGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the frame or a stride is zero.
    pub fn new(
        frame: (usize, usize),
        region: (usize, usize),
        stride: (usize, usize),
    ) -> RegionGrid {
        assert!(
            region.0 <= frame.0 && region.1 <= frame.1,
            "region exceeds frame"
        );
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be non-zero");
        RegionGrid {
            frame,
            region,
            stride,
        }
    }

    /// The §10.2 configuration: 640 × 480 frame, 64 × 36 regions
    /// overlapped by 16 pixels.
    pub fn paper_convnn() -> RegionGrid {
        RegionGrid::new((640, 480), (64, 36), (16, 16))
    }

    /// Region count per axis: `⌈(F − R)/S⌉ + 1`.
    pub fn counts(&self) -> (usize, usize) {
        (
            (self.frame.0 - self.region.0).div_ceil(self.stride.0) + 1,
            (self.frame.1 - self.region.1).div_ceil(self.stride.1) + 1,
        )
    }

    /// Total regions per frame (1 073 for [`RegionGrid::paper_convnn`]).
    pub fn count(&self) -> usize {
        let (nx, ny) = self.counts();
        nx * ny
    }

    /// Region dimensions.
    pub fn region_dims(&self) -> (usize, usize) {
        self.region
    }

    /// Frame dimensions the grid tiles.
    pub fn frame_dims(&self) -> (usize, usize) {
        self.frame
    }

    /// Tiling stride.
    pub fn stride(&self) -> (usize, usize) {
        self.stride
    }

    /// The origin of region `(i, j)`, clamped so the region stays inside
    /// the frame (the final row/column placement).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside [`RegionGrid::counts`].
    pub fn origin(&self, i: usize, j: usize) -> (usize, usize) {
        let (nx, ny) = self.counts();
        assert!(i < nx && j < ny, "region ({i},{j}) out of grid");
        (
            (i * self.stride.0).min(self.frame.0 - self.region.0),
            (j * self.stride.1).min(self.frame.1 - self.region.1),
        )
    }

    /// Iterates all region origins, row-major.
    pub fn origins(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (nx, ny) = self.counts();
        (0..ny).flat_map(move |j| (0..nx).map(move |i| self.origin(i, j)))
    }

    /// Streams a frame's regions as fixed-point stacks with `maps`
    /// replicated input channels.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not match the grid's frame dimensions.
    /// [`RegionGrid::try_stream`] is the non-panicking variant.
    pub fn stream<'a>(&self, frame: &'a Frame, maps: usize) -> RegionStream<'a> {
        assert_eq!(frame.dims(), self.frame, "frame does not match the grid");
        RegionStream {
            frame,
            grid: *self,
            maps,
            next: 0,
        }
    }

    /// Streams a frame's regions, or reports [`StreamError::FrameMismatch`]
    /// if the frame's dimensions differ from the grid's.
    pub fn try_stream<'a>(
        &self,
        frame: &'a Frame,
        maps: usize,
    ) -> Result<RegionStream<'a>, StreamError> {
        if frame.dims() != self.frame {
            return Err(StreamError::FrameMismatch {
                frame: frame.dims(),
                grid: self.frame,
            });
        }
        Ok(RegionStream {
            frame,
            grid: *self,
            maps,
            next: 0,
        })
    }
}

impl fmt::Display for RegionGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} frame, {}x{} regions, stride {}x{} ({} regions)",
            self.frame.0,
            self.frame.1,
            self.region.0,
            self.region.1,
            self.stride.0,
            self.stride.1,
            self.count()
        )
    }
}

/// Iterator over a frame's regions as fixed-point input stacks.
#[derive(Debug)]
pub struct RegionStream<'a> {
    frame: &'a Frame,
    grid: RegionGrid,
    maps: usize,
    next: usize,
}

impl Iterator for RegionStream<'_> {
    type Item = MapStack<Fx>;

    fn next(&mut self) -> Option<MapStack<Fx>> {
        if self.next >= self.grid.count() {
            return None;
        }
        let (nx, _) = self.grid.counts();
        let origin = self.grid.origin(self.next % nx, self.next / nx);
        self.next += 1;
        Some(
            self.frame
                .region_stacked(origin, self.grid.region_dims(), self.maps),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.count().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RegionStream<'_> {}

/// The partial-frame row buffer (§10.2): "the partial frame buffer must
/// store only the parts of the image reused across overlapping regions …
/// of the order of a few tens of pixel rows".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowBuffer {
    frame_width: usize,
    rows: usize,
    bytes_per_pixel: usize,
}

impl RowBuffer {
    /// Sizes the buffer for a region grid: it must hold one region-height
    /// band of full-width rows while the band's regions are processed,
    /// plus the `region_h − stride_y` rows reused by the next band.
    pub fn for_grid(grid: &RegionGrid, bytes_per_pixel: usize) -> RowBuffer {
        let reuse = grid.region.1 - grid.stride.1.min(grid.region.1);
        RowBuffer {
            frame_width: grid.frame.0,
            rows: grid.region.1 + reuse,
            bytes_per_pixel,
        }
    }

    /// Rows the buffer holds.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buffer footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.frame_width * self.rows * self.bytes_per_pixel
    }

    /// `true` if the buffer fits a commercial image processor's local
    /// SRAM (§2's 256 KB).
    pub fn fits_commercial_sram(&self) -> bool {
        self.bytes() <= 256 * 1024
    }
}

/// Frames per second given per-region processing time — the §10.2
/// arithmetic (sensors stream at the matched rate, so region processing is
/// the bottleneck).
pub fn frames_per_second(regions_per_frame: usize, seconds_per_region: f64) -> f64 {
    1.0 / (regions_per_frame as f64 * seconds_per_region)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_1073_regions() {
        let g = RegionGrid::paper_convnn();
        assert_eq!(g.counts(), (37, 29));
        assert_eq!(g.count(), 1073);
        assert!(g.to_string().contains("1073 regions"));
    }

    #[test]
    fn origins_cover_the_frame_edge() {
        let g = RegionGrid::paper_convnn();
        let last = g.origin(36, 28);
        assert_eq!(last, (640 - 64, 480 - 36));
        assert_eq!(g.origins().count(), 1073);
    }

    #[test]
    fn synthetic_sensor_is_deterministic() {
        let mut a = SyntheticSensor::new(32, 24, 9);
        let mut b = SyntheticSensor::new(32, 24, 9);
        assert_eq!(a.next_frame(), b.next_frame());
        let f1 = a.next_frame();
        assert_eq!(f1.index(), 1);
        let mut c = SyntheticSensor::new(32, 24, 10);
        assert_ne!(a.next_frame().pixels(), c.next_frame().pixels());
        assert_eq!(a.dims(), (32, 24));
    }

    #[test]
    fn regions_scale_pixels_into_unit_range() {
        let mut cam = SyntheticSensor::new(16, 16, 1);
        let f = cam.next_frame();
        let r = f.region((4, 4), (8, 8));
        assert_eq!(r.map_dims(), (8, 8));
        for v in r[0].iter() {
            let x = v.to_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn region_stacking_replicates_channels() {
        let mut cam = SyntheticSensor::new(16, 16, 1);
        let f = cam.next_frame();
        let r = f.region_stacked((0, 0), (8, 8), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], r[2]);
    }

    #[test]
    #[should_panic(expected = "exceeds frame")]
    fn oversized_region_rejected() {
        let mut cam = SyntheticSensor::new(8, 8, 1);
        let f = cam.next_frame();
        let _ = f.region((4, 4), (8, 8));
    }

    #[test]
    fn stream_yields_every_region() {
        let g = RegionGrid::new((32, 24), (16, 12), (8, 8));
        let mut cam = SyntheticSensor::new(32, 24, 2);
        let f = cam.next_frame();
        let stream = g.stream(&f, 1);
        assert_eq!(stream.len(), g.count());
        let all: Vec<_> = g.stream(&f, 1).collect();
        assert_eq!(all.len(), g.count());
        assert_eq!(all[0].map_dims(), (16, 12));
    }

    #[test]
    fn row_buffer_is_a_few_tens_of_rows_and_fits_sram() {
        // §10.2: tens of rows, well under the 256 KB of commercial image
        // processors (16-bit pixels as stored for NBin).
        let buf = RowBuffer::for_grid(&RegionGrid::paper_convnn(), 2);
        assert_eq!(buf.rows(), 36 + 20);
        assert!(buf.rows() < 100);
        assert!(buf.fits_commercial_sram(), "{} bytes", buf.bytes());
    }

    #[test]
    fn fps_arithmetic_matches_paper() {
        // 1 073 regions × 0.047 ms ≈ 50 ms → ~20 fps (§10.2).
        let fps = frames_per_second(1073, 0.047e-3);
        assert!((fps - 19.8).abs() < 0.3, "{fps}");
    }

    #[test]
    fn try_region_reports_out_of_bounds() {
        let mut cam = SyntheticSensor::new(8, 8, 1);
        let f = cam.next_frame();
        let err = f.try_region((4, 4), (8, 8)).unwrap_err();
        assert_eq!(
            err,
            StreamError::RegionOutOfBounds {
                origin: (4, 4),
                region: (8, 8),
                frame: (8, 8),
            }
        );
        assert!(err.to_string().contains("exceeds frame"));
        assert!(f.try_region((0, 0), (8, 8)).is_ok());
        assert!(f.try_region_stacked((4, 4), (8, 8), 2).is_err());
    }

    #[test]
    fn try_stream_reports_frame_mismatch() {
        let g = RegionGrid::new((32, 24), (16, 12), (8, 8));
        let mut cam = SyntheticSensor::new(16, 16, 2);
        let f = cam.next_frame();
        let err = g.try_stream(&f, 1).unwrap_err();
        assert_eq!(
            err,
            StreamError::FrameMismatch {
                frame: (16, 16),
                grid: (32, 24),
            }
        );
        let mut ok_cam = SyntheticSensor::new(32, 24, 2);
        let ok = ok_cam.next_frame();
        assert_eq!(g.try_stream(&ok, 1).unwrap().count(), g.count());
    }

    #[test]
    fn faulty_sensor_with_zero_plan_is_transparent() {
        let mut plain = SyntheticSensor::new(32, 24, 5);
        let mut faulty = FaultySensor::new(SyntheticSensor::new(32, 24, 5), FaultPlan::none());
        for _ in 0..3 {
            assert_eq!(plain.next_frame(), faulty.next_frame());
        }
        assert_eq!(faulty.dropped_rows() + faulty.corrupted_rows(), 0);
        assert_eq!(faulty.dims(), (32, 24));
    }

    #[test]
    fn faulty_sensor_is_deterministic_and_injects_rows() {
        use shidiannao_faults::FaultConfig;
        let cfg = FaultConfig {
            seed: 99,
            scanline_rate: 0.2,
            ..FaultConfig::zero()
        };
        let plan = FaultPlan::new(cfg);
        let mut a = FaultySensor::new(SyntheticSensor::new(32, 24, 5), plan);
        let mut b = FaultySensor::new(SyntheticSensor::new(32, 24, 5), plan);
        let (fa, fb) = (a.next_frame(), b.next_frame());
        assert_eq!(fa, fb);
        // At a 20% row rate over 24 rows, some fault fires with
        // overwhelming probability for this fixed seed.
        assert!(a.dropped_rows() + a.corrupted_rows() > 0);
        // The faulty frame differs from the clean one.
        let clean = SyntheticSensor::new(32, 24, 5).next_frame();
        assert_ne!(fa, clean);
    }

    #[test]
    fn non_overlapping_grid_counts() {
        let g = RegionGrid::new((64, 64), (16, 16), (16, 16));
        assert_eq!(g.count(), 16);
        let b = RowBuffer::for_grid(&g, 2);
        assert_eq!(b.rows(), 16);
    }
}
