//! Sensor streaming (§10.2): run the ConvNN text detector over the
//! overlapping regions of a synthetic 640×480 frame and report the
//! sustained frame rate — the paper's real-time argument.
//!
//! Processing all 1 073 regions takes a little while in a debug build;
//! use `--release`. Pass a region budget to subsample:
//!
//! ```text
//! cargo run --release --example sensor_stream        # full frame
//! cargo run --release --example sensor_stream 50     # first 50 regions
//! ```

use shidiannao::prelude::*;
use shidiannao::sensor::{frames_per_second, RegionGrid, RowBuffer, SyntheticSensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(usize::MAX);

    let grid = RegionGrid::paper_convnn();
    let network = zoo::convnn().build(42)?;
    let accel = Accelerator::new(AcceleratorConfig::paper());
    assert_eq!(grid.region_dims(), network.input_dims());

    let mut cam = SyntheticSensor::vga(99);
    let frame = cam.next_frame();
    println!("sensor : {grid}");
    let buffer = RowBuffer::for_grid(&grid, 2);
    println!(
        "buffer : {} rows = {:.1} KB (fits a 256 KB image processor: {})",
        buffer.rows(),
        buffer.bytes() as f64 / 1024.0,
        buffer.fits_commercial_sram()
    );

    let mut processed = 0usize;
    let mut cycles_total = 0u64;
    let mut detections = 0usize;
    let mut per_region_s = 0.0;
    for region in grid.stream(&frame, network.input_maps()).take(budget) {
        let run = accel.run(&network, &region)?;
        per_region_s = run.seconds();
        cycles_total += run.stats().cycles();
        if run.output()[0] > Fx::ZERO {
            detections += 1;
        }
        processed += 1;
    }

    println!(
        "regions: {processed} processed, {} cycles total, {detections} positive scores",
        cycles_total
    );
    println!(
        "timing : {:.3} ms/region -> {:.1} ms/frame -> {:.1} fps (paper: 0.047 ms, ~50 ms, 20 fps)",
        per_region_s * 1e3,
        per_region_s * grid.count() as f64 * 1e3,
        frames_per_second(grid.count(), per_region_s)
    );
    Ok(())
}
