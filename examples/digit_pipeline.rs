//! Digit-recognition pipeline: LeNet-5 inference with a per-layer
//! breakdown of cycles, buffer traffic, read modes, and energy — the view
//! an architect uses to see where the accelerator spends its time.
//!
//! ```text
//! cargo run --release --example digit_pipeline
//! ```

use shidiannao::prelude::*;
use shidiannao::sim::ReadMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::lenet5().build(42)?;
    let accel = Accelerator::new(AcceleratorConfig::paper());

    // A deterministic synthetic "digit" (the paper evaluates layer shapes,
    // not trained accuracy — weights and inputs are seeded).
    let input = network.random_input(1234);
    let run = accel.run(&network, &input)?;

    println!("LeNet-5 on ShiDianNao (8x8 PEs, 1 GHz)");
    println!(
        "{:<6} {:>9} {:>8} {:>11} {:>11} {:>9} {:>7}",
        "layer", "cycles", "PE util", "NBin reads", "SB reads", "FIFO pops", "modes"
    );
    for layer in run.stats().layers() {
        let modes: String = ReadMode::ALL
            .iter()
            .filter(|&&m| layer.reads_by_mode[m as usize] > 0)
            .map(|m| m.to_string())
            .collect();
        println!(
            "{:<6} {:>9} {:>7.1}% {:>10}B {:>10}B {:>9} {:>7}",
            layer.label,
            layer.cycles,
            100.0 * layer.pe_utilization(),
            layer.nbin.read_bytes,
            layer.sb.read_bytes,
            layer.fifo_pops,
            modes
        );
    }

    let total = run.stats().total();
    println!(
        "\ntotal: {} cycles, {:.1} us, {} | inter-PE transfers saved {} NBin reads",
        run.stats().cycles(),
        run.seconds() * 1e6,
        run.energy(),
        total.fifo_pops
    );

    // Classify: the winning output neuron is the predicted digit.
    let output = run.output();
    let (digit, score) = output
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1))
        .expect("LeNet-5 has ten outputs");
    println!("predicted digit: {digit} (score {score})");

    // Cross-check against the golden reference and the float model.
    let golden = network.forward_fixed(&input);
    assert_eq!(output, golden.output());
    println!("bit-identical to the fixed-point golden reference ✓");
    Ok(())
}
