//! A semantically meaningful workload: hand-crafted Sobel edge-detection
//! kernels loaded into a ShiDianNao network (the §3 deployment model —
//! weights trained/designed off-line, shipped to the sensor), run on a
//! synthetic frame, and cross-checked against a hand-computed response.
//!
//! ```text
//! cargo run --release --example edge_detector
//! ```

use shidiannao::cnn::{io, Activation, ConvSpec, NetworkBuilder};
use shidiannao::prelude::*;
use shidiannao::tensor::FeatureMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Topology: one conv layer, two output maps (Sobel X / Sobel Y).
    let mut network = NetworkBuilder::new("sobel", 1, (16, 16))
        .conv(ConvSpec::new(2, (3, 3)).with_activation(Activation::None))
        .build(0)?;

    // 2. Replace the random weights with the classic Sobel kernels,
    //    scaled by 1/8 to keep responses within Q7.8.
    let s = 1.0 / 8.0;
    let sobel_x = FeatureMap::from_vec(
        3,
        3,
        [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0]
            .iter()
            .map(|v| Fx::from_f32(v * s))
            .collect(),
    )?;
    let sobel_y = FeatureMap::from_vec(
        3,
        3,
        [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0]
            .iter()
            .map(|v| Fx::from_f32(v * s))
            .collect(),
    )?;
    network.set_conv_kernel(0, 0, 0, sobel_x.clone())?;
    network.set_conv_kernel(0, 1, 0, sobel_y.clone())?;
    network.set_conv_bias(0, 0, Fx::ZERO)?;
    network.set_conv_bias(0, 1, Fx::ZERO)?;

    // 3. A synthetic scene: dark left half, bright right half — one sharp
    //    vertical edge at column 8.
    let scene = FeatureMap::from_fn(16, 16, |x, _| Fx::from_f32(if x < 8 { 0.1 } else { 0.9 }));
    let mut input = shidiannao::tensor::MapStack::new(16, 16);
    input.push(scene.clone())?;

    // 4. Run on the accelerator.
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let run = accel.run(&network, &input)?;
    let maps = &run.layer_outputs()[0];
    let (gx, gy) = (&maps[0], &maps[1]);

    // 5. The X response must spike exactly where kernels straddle the
    //    edge (output columns 6 and 7) and vanish elsewhere; the Y
    //    response must be zero everywhere (no horizontal edges).
    let mut peak_cols = Vec::new();
    for x in 0..14 {
        if gx[(x, 7)].to_f32().abs() > 0.2 {
            peak_cols.push(x);
        }
    }
    assert_eq!(peak_cols, vec![6, 7], "X response peaks at the edge");
    assert!(gy.iter().all(|v| v.to_f32().abs() < 0.01), "no Y response");

    // 6. And the whole thing matches a hand-computed convolution.
    let hand = |kernel: &FeatureMap<Fx>, x: usize, y: usize| {
        let mut acc = shidiannao::fixed::Accum::new();
        for ky in 0..3 {
            for kx in 0..3 {
                acc.mac(scene[(x + kx, y + ky)], kernel[(kx, ky)]);
            }
        }
        acc.to_fx()
    };
    for y in 0..14 {
        for x in 0..14 {
            assert_eq!(gx[(x, y)], hand(&sobel_x, x, y));
            assert_eq!(gy[(x, y)], hand(&sobel_y, x, y));
        }
    }
    println!("Sobel X response along row 7 (output columns 0..14):");
    for x in 0..14 {
        print!("{:>6.2}", gx[(x, 7)].to_f32());
    }
    println!("\nedge located at columns 6–7, exactly under the brightness step ✓");

    // 7. Ship the detector: the model round-trips through the binary
    //    format for deployment.
    let mut bytes = Vec::new();
    io::save(&network, &mut bytes)?;
    let reloaded = io::load(bytes.as_slice())?;
    let rerun = accel.run(&reloaded, &input)?;
    assert_eq!(rerun.output(), run.output());
    println!(
        "model serialized to {} bytes and re-verified after reload ✓",
        bytes.len()
    );
    Ok(())
}
