//! Quickstart: build LeNet-5, run one inference on the simulated
//! ShiDianNao accelerator, and verify it against the golden reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shidiannao::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a benchmark CNN with deterministic weights (Table 2's
    //    LeNet-5: two conv, two pooling, three classifier layers).
    let network = zoo::lenet5().build(42)?;
    println!(
        "network: {} ({} layers)",
        network.name(),
        network.layers().len()
    );

    // 2. Instantiate the accelerator with the paper's parameters
    //    (8×8 PEs, 64 KB NBin, 64 KB NBout, 128 KB SB, 32 KB IB, 1 GHz).
    let accel = Accelerator::new(AcceleratorConfig::paper());

    // 3. Run one inference cycle-by-cycle.
    let input = network.random_input(7);
    let run = accel.run(&network, &input)?;

    // 4. The simulator is bit-identical to the fixed-point golden model.
    let golden = network.forward_fixed(&input);
    assert_eq!(run.output(), golden.output());
    println!("output  : {:?}", run.output());

    // 5. Performance and energy come straight from the event counters.
    let stats = run.stats();
    println!(
        "cycles  : {} ({:.1} us at 1 GHz)",
        stats.cycles(),
        run.seconds() * 1e6
    );
    println!("PE util : {:.1} %", 100.0 * stats.total().pe_utilization());
    println!("energy  : {}", run.energy());
    println!("power   : {:.1} mW", run.average_power_mw());
    println!(
        "GOP/s   : {:.1} effective of {:.0} peak",
        run.effective_gops(),
        accel.config().peak_gops()
    );
    Ok(())
}
