//! Define your own CNN with the builder API — including the layer types
//! the benchmarks don't exercise (strided convolution, overlapping
//! pooling, LRN and LCN normalization, sparse classifiers) — and run it on
//! the accelerator.
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use shidiannao::cnn::{Activation, ConvSpec, FcSpec, LcnSpec, LrnSpec, NetworkBuilder, PoolSpec};
use shidiannao::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-channel 40×40 input through one of everything.
    let network = NetworkBuilder::new("kitchen-sink", 3, (40, 40))
        // Strided convolution with partial connectivity and sigmoid.
        .conv(
            ConvSpec::new(8, (5, 5))
                .with_stride((2, 2))
                .with_pairs(16)
                .with_activation(Activation::Sigmoid),
        )
        // Cross-map response normalization (decomposed per Fig. 15).
        .lrn(LrnSpec {
            window_maps: 3,
            k: 1.0,
            alpha: 0.25,
        })
        // Overlapping max pooling — the "rare case" handled like a
        // convolution (§8.2).
        .pool(PoolSpec::max((3, 3)).with_stride((2, 2)))
        // Local contrast normalization (decomposed per Fig. 16).
        .lcn(LcnSpec::new(5))
        .conv(ConvSpec::new(12, (3, 3)))
        .pool(PoolSpec::avg((2, 2)))
        // A sparse classifier: each output reads 32 of the inputs.
        .fc(FcSpec::new(24).with_synapses_per_output(32))
        .fc(FcSpec::new(4).with_activation(Activation::None))
        .build(7)?;

    println!("{}:", network.name());
    for layer in network.layers() {
        println!(
            "  {:<3} {:<5} {:>3} maps of {:>3}x{:<3} ({} synapses)",
            layer.label(),
            layer.kind().to_string(),
            layer.out_maps(),
            layer.out_dims().0,
            layer.out_dims().1,
            layer.synapse_count()
        );
    }

    let report = shidiannao::cnn::storage::report(&network);
    println!(
        "storage: largest layer {:.2} KB, synapses {:.2} KB, total {:.2} KB",
        report.largest_layer_kb(),
        report.synapse_kb(),
        report.total_kb()
    );

    let accel = Accelerator::new(AcceleratorConfig::paper());
    let input = network.random_input(3);
    let run = accel.run(&network, &input)?;
    assert_eq!(run.output(), network.forward_fixed(&input).output());
    println!(
        "ran in {} cycles ({:.1} us); output = {:?}",
        run.stats().cycles(),
        run.seconds() * 1e6,
        run.output()
    );

    // Compare against the baselines for context.
    let cpu = CpuModel::xeon_e7_8830().run_seconds(&network);
    let dn = DianNao::new(DianNaoConfig::paper()).run(&network);
    println!(
        "speedups: {:.1}x over the CPU model, {:.2}x over the DianNao model",
        cpu / run.seconds(),
        dn.seconds() / run.seconds()
    );
    Ok(())
}
