//! Design-space exploration: sweep the PE array and buffer sizes around
//! the paper's 8×8 / 288 KB design point and report performance, area,
//! and energy for each — the study behind §10.2's design choices.
//!
//! ```text
//! cargo run --release --example design_space [benchmark]
//! ```

use shidiannao::prelude::*;
use shidiannao::sim::area::area_of;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "LeNet-5".into());
    let builder = zoo::by_name(&which)
        .ok_or_else(|| format!("unknown benchmark '{which}' (try `LeNet-5`, `ConvNN`, …)"))?;
    let network = builder.build(42)?;
    let input = network.random_input(7);

    println!("design-space sweep on {}", network.name());
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>11} {:>10}",
        "PEs", "cycles", "PE util", "area mm2", "energy nJ", "nJ x mm2"
    );

    let mut golden: Option<Vec<Fx>> = None;
    for side in [2usize, 4, 6, 8, 12, 16] {
        let cfg = AcceleratorConfig::with_pe_grid(side, side);
        let area = area_of(&cfg).total_mm2();
        let run = Accelerator::new(cfg).run(&network, &input)?;
        // Functional results must not depend on the design point.
        match &golden {
            None => golden = Some(run.output()),
            Some(g) => assert_eq!(&run.output(), g, "results changed with PE grid"),
        }
        let energy = run.energy().total_nj();
        println!(
            "{:>3}x{:<3} {:>9} {:>8.1}% {:>10.2} {:>11.1} {:>10.1}",
            side,
            side,
            run.stats().cycles(),
            100.0 * run.stats().total().pe_utilization(),
            area,
            energy,
            energy * area
        );
    }

    println!("\nbuffer sweep at 8x8 PEs (NBin = NBout):");
    println!("{:>9} {:>10} {:>10}", "NB KB", "fits?", "cycles");
    for kb in [4usize, 16, 32, 64, 128] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.nbin_bytes = kb * 1024;
        cfg.nbout_bytes = kb * 1024;
        match Accelerator::new(cfg).run(&network, &input) {
            Ok(run) => println!("{:>9} {:>10} {:>10}", kb, "yes", run.stats().cycles()),
            Err(e) => println!("{:>9} {:>10} ({e})", kb, "no"),
        }
    }
    println!(
        "\nthe paper's point: performance is buffer-threshold limited (a layer either \
         fits on chip or cannot run), so capacity follows Table 1's worst case."
    );
    Ok(())
}
