//! The §5 premise, measured: "using 16-bit fixed-point operators brings
//! in negligible accuracy loss to neural networks". This example runs
//! every Table 2 benchmark in both arithmetics — the Q7.8 fixed-point
//! datapath (with its truncated multiplier and PLA activations) and an
//! `f32` reference with the same quantized weights — and reports the
//! output error and decision agreement.
//!
//! ```text
//! cargo run --release --example accuracy_study
//! ```

use shidiannao::prelude::*;

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const TRIALS: u64 = 8;
    println!(
        "{:<11} {:>9} {:>12} {:>12} {:>10}",
        "CNN", "outputs", "max |err|", "mean |err|", "agreement"
    );
    let mut worst_overall: f32 = 0.0;
    for builder in zoo::all() {
        let network = builder.build(42)?;
        let mut max_err: f32 = 0.0;
        let mut sum_err = 0.0f64;
        let mut count = 0u64;
        let mut agree = 0u64;
        for trial in 0..TRIALS {
            let input = network.random_input(1000 + trial);
            let fixed: Vec<f32> = network
                .forward_fixed(&input)
                .output()
                .iter()
                .map(|v| v.to_f32())
                .collect();
            let float = network
                .forward_f32(&input.map(|v| v.to_f32()))
                .last()
                .expect("networks are non-empty")
                .flatten();
            for (a, b) in fixed.iter().zip(&float) {
                let e = (a - b).abs();
                max_err = max_err.max(e);
                sum_err += e as f64;
                count += 1;
            }
            if argmax(&fixed) == argmax(&float) {
                agree += 1;
            }
        }
        worst_overall = worst_overall.max(max_err);
        println!(
            "{:<11} {:>9} {:>12.4} {:>12.4} {:>8}/{}",
            network.name(),
            network.output_count(),
            max_err,
            sum_err / count as f64,
            agree,
            TRIALS
        );
    }
    println!(
        "\nworst output deviation across all benchmarks and trials: {worst_overall:.4} \
         (Q7.8 resolution is {:.4})",
        1.0 / 256.0
    );
    println!("the paper's claim holds: 16-bit fixed point changes outputs by a few LSBs.");
    Ok(())
}
