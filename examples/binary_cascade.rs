//! The two-stage sensor-side cascade: a 1-bit binarized front-end
//! scores every region tile of a synthetic scene, and only regions
//! clearing the escalation threshold run the full-precision LeNet-5.
//!
//! ```text
//! cargo run --release --example binary_cascade
//! ```
//!
//! Both stages run on the real simulator and replay bit-identically to
//! the fixed-point golden reference; the front-end charges the `W1`
//! energy scaling its XNOR-popcount datapath earns. `harness cascade`
//! is the gated, artifact-writing version of this scenario.

use shidiannao::prelude::*;
use shidiannao::quant::{binary_front, run_cascade};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CascadeConfig::smoke();
    let front = binary_front(cfg.net_seed)?;
    println!(
        "front-end: {} at w1 — SB {} bytes packed vs {} at 16 bits ({:.1}x smaller)",
        front.network.name(),
        front.packed_sb_bytes,
        front.baseline_sb_bytes,
        front.compression()
    );

    let report = run_cascade(&cfg)?;
    println!(
        "scene    : {} frames of {}x{}, {} region tiles",
        cfg.frames,
        cfg.frame.0,
        cfg.frame.1,
        report.regions.len()
    );
    println!(
        "stages   : front {} cycles / {:.1} nJ, full {} cycles / {:.1} nJ ({:.1}x advantage)",
        report.front_cycles,
        report.front_energy_nj,
        report.full_cycles,
        report.full_energy_nj,
        report.front_advantage()
    );
    println!(
        "cascade  : {}/{} escalated ({:.0}%), missed positives {}",
        report.escalated,
        report.regions.len(),
        100.0 * report.escalation_rate,
        report.missed_positives
    );
    println!(
        "savings  : {:.1}% cycles, {:.1}% energy vs running LeNet-5 everywhere",
        100.0 * report.cycles_saved(),
        100.0 * report.energy_saved()
    );
    assert!(report.front_bit_identical && report.full_bit_identical);
    assert!(report.kernel_certified);
    println!("certified: both stages bit-identical to golden, XNOR kernels certified");
    Ok(())
}
