//! The temporal-reuse video datapath end to end: three camera motion
//! classes stream through a motion-gated [`VideoPipeline`], and each
//! frame's skip/compute ledger, delta-load row traffic, and savings
//! against frame-independent processing are printed side by side.
//!
//! ```text
//! cargo run --release --example video_stream
//! ```

use shidiannao::prelude::*;
use shidiannao::sensor::{FrameSource, Motion, MovingObject, RegionGrid, VideoSensor};
use shidiannao::video::{VideoConfig, VideoPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FRAMES: usize = 8;
    let grid = RegionGrid::new((60, 60), (20, 20), (20, 20));
    let scenes: [(&str, VideoSensor); 3] = [
        ("static", VideoSensor::new(60, 60, 7, Motion::Static)),
        (
            "mostly-static",
            VideoSensor::new(60, 60, 7, Motion::Static).with_object(MovingObject {
                size: (10, 10),
                speed: (7, 4),
            }),
        ),
        (
            "panning",
            VideoSensor::new(60, 60, 7, Motion::Pan { dx: 2, dy: 1 }),
        ),
    ];

    for (name, mut cam) in scenes {
        let net = zoo::gabor().build(1)?;
        let mut pipe = VideoPipeline::new(
            Accelerator::new(AcceleratorConfig::paper()),
            net,
            grid,
            VideoConfig::default(),
        )?;
        println!("scene: {name}");
        println!(
            "  {:>5} {:>9} {:>8} {:>10} {:>10} {:>8} {:>8}",
            "frame", "computed", "skipped", "rows in", "cycles", "vs base", "stale"
        );
        let mut total = 0u64;
        let mut baseline = 0u64;
        for _ in 0..FRAMES {
            let r = pipe.process_frame(&cam.next_frame())?;
            total += r.total_cycles();
            baseline += r.baseline_cycles();
            println!(
                "  {:>5} {:>9} {:>8} {:>4}/{:<5} {:>10} {:>7.2}x {:>8}",
                r.frame_index(),
                r.ledger().computed,
                r.ledger().skipped,
                r.rows_streamed(),
                r.rows_total(),
                r.total_cycles(),
                r.baseline_cycles() as f64 / r.total_cycles() as f64,
                r.stale_results(),
            );
        }
        println!(
            "  total: {total} cycles vs {baseline} frame-independent ({:.2}x)\n",
            baseline as f64 / total as f64
        );
    }
    Ok(())
}
