//! The temporal-reuse video datapath: motion-gated region scheduling
//! over the streaming pipeline (DESIGN.md §3k).
//!
//! §10.2 tiles each frame into a grid of overlapping regions and runs
//! every one through the accelerator — correct, but wasteful on video,
//! where most of a surveillance-style scene does not change between
//! frames. A [`VideoPipeline`] puts a frame-differencing comparator on
//! the sensor side (the [`crate::sensor::FrameDelta`] dirty-region
//! bitmaps): **clean** regions skip inference entirely and replay the
//! cached result at the calibrated compare-only cost, while **dirty**
//! regions run the normal path — with the Load phase shrunk to the
//! changed input rows by the cross-frame NBin residency of
//! [`crate::sim::Session::infer_delta`]. A periodic full refresh and a
//! per-region staleness bound keep cached results from drifting
//! unboundedly, and an every-region oracle prices what the gating
//! actually costs (`stale_results`, `missed_detections`) the same way
//! the early-exit cascade prices declined escalations.
//!
//! Everything is a pure function of the construction inputs and the
//! frame sequence: same sensor seed, same config, same reports.

use crate::cnn::{ConvSpec, FcSpec, Network, NetworkBuilder, PoolSpec};
use crate::fixed::Fx;
use crate::pipeline::{PipelineError, RegionLedger, RegionResult, StreamingPipeline};
use crate::quant::quantize_network;
use crate::sensor::{Frame, FrameDelta, RegionGrid};
use crate::serve::binarize_pixel;
use crate::sim::{
    Accelerator, AcceleratorConfig, LayerStats, NbResidency, PreparedNetwork, WeightPrecision,
};
use crate::tensor::MapStack;

/// How a dirty region is confirmed before full-precision compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MotionGate {
    /// Frame differencing alone: every dirty region computes.
    Diff,
    /// Dirty regions are re-scored by a tiny W1-binarized front-end
    /// (the early-exit cascade's sensor-side stage); only regions the
    /// front confirms escalate to full compute, the rest replay their
    /// cached result. The front's cycles and W1-scaled energy are
    /// charged per gate decision.
    DiffThenBinaryFront {
        /// Escalate iff the front's score is `≥ threshold`.
        threshold: Fx,
        /// Weight seed of the front network.
        seed: u64,
    },
}

/// Motion-gated scheduling parameters of a [`VideoPipeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VideoConfig {
    /// Per-pixel differencing threshold: a region is dirty when any
    /// pixel moved by at least this much. `0` disables gating entirely —
    /// the pipeline reduces *exactly* to frame-independent
    /// [`StreamingPipeline::process_frame`].
    pub dirty_threshold: u8,
    /// Every `refresh_interval`-th frame recomputes all regions
    /// regardless of motion (`0` = never force a refresh).
    pub refresh_interval: u64,
    /// A cached result older than this many frames is recomputed even
    /// if its region stays clean (`0` = no bound).
    pub staleness_bound: u64,
    /// The gate confirming dirty regions.
    pub gate: MotionGate,
    /// Detection threshold the oracle prices misses against: a region
    /// is *positive* iff its max output is `≥ decision`.
    pub decision: Fx,
    /// Run the every-region oracle (golden reference on every region)
    /// to certify computed outputs and price skipped ones. Costs host
    /// time only — never accelerator cycles.
    pub oracle: bool,
}

impl Default for VideoConfig {
    fn default() -> VideoConfig {
        VideoConfig {
            dirty_threshold: 8,
            refresh_interval: 16,
            staleness_bound: 0,
            gate: MotionGate::Diff,
            decision: Fx::from_bits(12),
            oracle: true,
        }
    }
}

/// One region's cached recognition output and when it was computed.
#[derive(Clone, Debug)]
struct CachedRegion {
    output: Vec<Fx>,
    computed_at: u64,
}

/// The prepared binarized front-end of
/// [`MotionGate::DiffThenBinaryFront`], priced at the W1 energy scaling
/// (same topology family as the cascade's `BinaryFront`, sized to the
/// pipeline's region).
#[derive(Clone, Debug)]
struct FrontGate {
    prepared: PreparedNetwork,
    threshold: Fx,
}

impl FrontGate {
    fn build(region: (usize, usize), threshold: Fx, seed: u64) -> Result<FrontGate, PipelineError> {
        let net = NetworkBuilder::new("VideoFront", 1, region)
            .conv(ConvSpec::new(4, (5, 5)).with_stride((2, 2)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(1))
            .build(seed)
            .map_err(|e| PipelineError::Gate(format!("front topology: {e}")))?;
        let quantized = quantize_network(&net, WeightPrecision::W1)
            .map_err(|e| PipelineError::Gate(format!("front quantization: {e}")))?;
        let mut accel = Accelerator::new(AcceleratorConfig::paper());
        let w1 = accel
            .energy_model()
            .with_weight_precision(WeightPrecision::W1);
        accel.set_energy_model(w1);
        let prepared = accel.prepare(&quantized.network)?;
        Ok(FrontGate {
            prepared,
            threshold,
        })
    }
}

/// Timing, energy, and accounting of one motion-gated frame.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoFrameReport {
    frame_index: u64,
    results: Vec<RegionResult>,
    ledger: RegionLedger,
    compute_cycles: u64,
    load_cycles: u64,
    compare_cycles: u64,
    front_cycles: u64,
    energy_nj: f64,
    compare_energy_nj: f64,
    front_energy_nj: f64,
    baseline_cycles: u64,
    baseline_energy_nj: f64,
    rows_streamed: usize,
    rows_total: usize,
    front_runs: usize,
    front_rejected: usize,
    stale_results: usize,
    missed_detections: usize,
    bit_identical: bool,
    frequency_ghz: f64,
}

impl VideoFrameReport {
    /// Position of this frame in the pipeline's sequence.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Per-region outputs in grid order — computed or cache-replayed,
    /// every region present.
    pub fn results(&self) -> &[RegionResult] {
        &self.results
    }

    /// The shared region-outcome ledger; balances to the grid size.
    pub fn ledger(&self) -> RegionLedger {
        self.ledger
    }

    /// Accelerator cycles spent computing dirty regions (loads
    /// excluded).
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// Cycles streaming dirty input rows into NBin (delta loads).
    pub fn load_cycles(&self) -> u64 {
        self.load_cycles
    }

    /// Cycles of the sensor-side differencing comparator.
    pub fn compare_cycles(&self) -> u64 {
        self.compare_cycles
    }

    /// Cycles of the binarized front gate (0 under [`MotionGate::Diff`]).
    pub fn front_cycles(&self) -> u64 {
        self.front_cycles
    }

    /// Total cycles of the gated frame, all stages.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.load_cycles + self.compare_cycles + self.front_cycles
    }

    /// Accelerator energy of the computed regions, nJ.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// Energy of the differencing comparator (NB-style reads), nJ.
    pub fn compare_energy_nj(&self) -> f64 {
        self.compare_energy_nj
    }

    /// Energy of the front gate at the W1 scaling, nJ.
    pub fn front_energy_nj(&self) -> f64 {
        self.front_energy_nj
    }

    /// Total energy of the gated frame, nJ.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy_nj + self.compare_energy_nj + self.front_energy_nj
    }

    /// Cycles frame-independent processing would have spent on this
    /// frame (every region computed, cold loads).
    pub fn baseline_cycles(&self) -> u64 {
        self.baseline_cycles
    }

    /// Energy frame-independent processing would have spent, nJ.
    pub fn baseline_energy_nj(&self) -> f64 {
        self.baseline_energy_nj
    }

    /// Input rows actually streamed over the sensor→NBin link across
    /// the frame's computed regions.
    pub fn rows_streamed(&self) -> usize {
        self.rows_streamed
    }

    /// Input rows the computed regions carry in total.
    pub fn rows_total(&self) -> usize {
        self.rows_total
    }

    /// Front-gate inferences run this frame.
    pub fn front_runs(&self) -> usize {
        self.front_runs
    }

    /// Dirty regions the front gate sent back to cache replay.
    pub fn front_rejected(&self) -> usize {
        self.front_rejected
    }

    /// Skipped regions whose replayed output differs from what a fresh
    /// compute would produce (oracle-priced; 0 when the oracle is off).
    pub fn stale_results(&self) -> usize {
        self.stale_results
    }

    /// Skipped regions that are oracle-positive but whose replayed
    /// output is not — detections the gating delayed.
    pub fn missed_detections(&self) -> usize {
        self.missed_detections
    }

    /// Every computed region matched the fixed-point golden reference
    /// (vacuously `true` when the oracle is off).
    pub fn bit_identical(&self) -> bool {
        self.bit_identical
    }

    /// Frame latency in seconds (serial stages).
    pub fn seconds(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_ghz * 1e9)
    }
}

/// A [`StreamingPipeline`] with motion-gated region scheduling and
/// cross-frame NBin residency (see [the module](self)).
///
/// # Examples
///
/// ```
/// use shidiannao::prelude::*;
/// use shidiannao::sensor::{FrameSource, Motion, RegionGrid, VideoSensor};
/// use shidiannao::video::{VideoConfig, VideoPipeline};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?; // 20×20 input
/// let grid = RegionGrid::new((40, 40), (20, 20), (20, 20));
/// let mut pipe = VideoPipeline::new(
///     Accelerator::new(AcceleratorConfig::paper()),
///     net,
///     grid,
///     VideoConfig::default(),
/// )?;
/// let mut cam = VideoSensor::new(40, 40, 7, Motion::Static);
/// let cold = pipe.process_frame(&cam.next_frame())?;
/// let warm = pipe.process_frame(&cam.next_frame())?;
/// // A static scene: the second frame skips every region.
/// assert_eq!(cold.ledger().computed, 4);
/// assert_eq!(warm.ledger().skipped, 4);
/// assert!(warm.total_cycles() < cold.total_cycles());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct VideoPipeline {
    inner: StreamingPipeline,
    config: VideoConfig,
    delta: FrameDelta,
    front: Option<FrontGate>,
    cache: Vec<Option<CachedRegion>>,
    residency: Vec<NbResidency>,
    frames_seen: u64,
    per_region_cycles: u64,
    per_region_energy_nj: f64,
}

impl VideoPipeline {
    /// Assembles a motion-gated pipeline over `accel`/`network`/`grid`
    /// and calibrates the frame-independent baseline cost with one
    /// probe inference (per-region cycles and energy are
    /// data-independent, so one probe prices every region).
    ///
    /// # Errors
    ///
    /// Everything [`StreamingPipeline::new`] rejects, plus
    /// [`PipelineError::Gate`] when the front-end of
    /// [`MotionGate::DiffThenBinaryFront`] cannot be built for the
    /// grid's region size.
    pub fn new(
        accel: Accelerator,
        network: Network,
        grid: RegionGrid,
        config: VideoConfig,
    ) -> Result<VideoPipeline, PipelineError> {
        let inner = StreamingPipeline::new(accel, network, grid)?;
        let front = match config.gate {
            MotionGate::Diff => None,
            MotionGate::DiffThenBinaryFront { threshold, seed } => {
                Some(FrontGate::build(grid.region_dims(), threshold, seed)?)
            }
        };
        let probe = inner.network().random_input(0x71DE0);
        let run = inner.prepared().session().infer(&probe)?;
        let count = grid.count();
        Ok(VideoPipeline {
            per_region_cycles: run.stats().cycles(),
            per_region_energy_nj: run.energy().total_nj(),
            delta: FrameDelta::new(grid, config.dirty_threshold),
            front,
            cache: vec![None; count],
            residency: vec![NbResidency::new(); count],
            frames_seen: 0,
            inner,
            config,
        })
    }

    /// The underlying frame-independent pipeline.
    pub fn pipeline(&self) -> &StreamingPipeline {
        &self.inner
    }

    /// The grid driving the pipeline.
    pub fn grid(&self) -> &RegionGrid {
        self.inner.grid()
    }

    /// The network being served.
    pub fn network(&self) -> &Network {
        self.inner.network()
    }

    /// The scheduling parameters.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Frames processed so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Calibrated frame-independent cost of one region (cycles, nJ).
    pub fn per_region_cost(&self) -> (u64, f64) {
        (self.per_region_cycles, self.per_region_energy_nj)
    }

    /// Drops all temporal state — differencing history, cached results,
    /// NBin residency. The next frame behaves like the first.
    pub fn reset(&mut self) {
        self.delta.reset();
        for c in &mut self.cache {
            *c = None;
        }
        for r in &mut self.residency {
            r.invalidate();
        }
        self.frames_seen = 0;
    }

    /// Processes one frame under motion gating.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stream`] on a frame/grid mismatch and
    /// [`PipelineError::Run`]/[`PipelineError::Gate`] if a compute or
    /// gate run fails (cannot happen after a successful
    /// [`VideoPipeline::new`]).
    pub fn process_frame(&mut self, frame: &Frame) -> Result<VideoFrameReport, PipelineError> {
        let seq = self.frames_seen;
        let count = self.inner.grid().count();
        let baseline_cycles = self.per_region_cycles * count as u64;
        let baseline_energy_nj = self.per_region_energy_nj * count as f64;
        let frequency_ghz = self.inner.prepared().config().frequency_ghz;

        // Threshold 0: exact reduction to frame-independent processing —
        // no differencing, no residency, cold loads, identical cycles,
        // energy, and outputs.
        if self.config.dirty_threshold == 0 {
            let report = self.inner.process_frame(frame)?;
            self.frames_seen += 1;
            for (ri, r) in report.results().iter().enumerate() {
                self.cache[ri] = Some(CachedRegion {
                    output: r.output.clone(),
                    computed_at: seq,
                });
            }
            let maps = self.inner.network().input_maps();
            let rows = count * maps * self.inner.grid().region_dims().1;
            return Ok(VideoFrameReport {
                frame_index: seq,
                ledger: report.ledger(),
                compute_cycles: report.compute_cycles(),
                load_cycles: report.load_cycles(),
                compare_cycles: 0,
                front_cycles: 0,
                energy_nj: report.energy_nj(),
                compare_energy_nj: 0.0,
                front_energy_nj: 0.0,
                baseline_cycles,
                baseline_energy_nj,
                rows_streamed: rows,
                rows_total: rows,
                front_runs: 0,
                front_rejected: 0,
                stale_results: 0,
                missed_detections: 0,
                bit_identical: true,
                results: report.results().to_vec(),
                frequency_ghz,
            });
        }

        let dirty_map = self.delta.observe(frame)?;
        self.frames_seen += 1;
        let config = self.config;
        let inner = &self.inner;
        let front = &self.front;
        let cache = &mut self.cache;
        let residency = &mut self.residency;
        let grid = inner.grid();
        let network = inner.network();
        let prepared = inner.prepared();
        let maps = network.input_maps();

        let mut results = Vec::with_capacity(count);
        let mut ledger = RegionLedger::default();
        let mut compute_cycles = 0u64;
        let mut load_cycles = 0u64;
        let mut front_cycles = 0u64;
        let mut energy_nj = 0.0;
        let mut front_energy_nj = 0.0;
        let (mut rows_streamed, mut rows_total) = (0usize, 0usize);
        let (mut front_runs, mut front_rejected) = (0usize, 0usize);
        let (mut stale_results, mut missed_detections) = (0usize, 0usize);
        let mut bit_identical = true;
        let refresh_due =
            config.refresh_interval > 0 && seq.is_multiple_of(config.refresh_interval);

        // One session serves the frame's computed regions; one front
        // session serves its gate decisions. Per-region residency keeps
        // the delta loads honest across frames.
        let mut session = prepared.session();
        let mut front_session = front.as_ref().map(|f| f.prepared.session());
        let origins: Vec<_> = grid.origins().collect();
        for ((ri, origin), raw) in origins
            .into_iter()
            .enumerate()
            .zip(grid.try_stream(frame, maps)?)
        {
            let stale_due = cache[ri].as_ref().is_some_and(|c| {
                config.staleness_bound > 0 && seq - c.computed_at >= config.staleness_bound
            });
            let forced = cache[ri].is_none() || refresh_due || stale_due;
            let mut compute = forced;
            if !compute && dirty_map.is_dirty(ri) {
                match (front, &mut front_session) {
                    (None, _) => compute = true,
                    (Some(f), Some(fs)) => {
                        // Second gate: the W1 front re-scores the dirty
                        // region from its sign-binarized pixels.
                        front_runs += 1;
                        let mut bin = MapStack::new(raw.width(), raw.height());
                        bin.push(raw[0].map(|&px| binarize_pixel(px)))
                            .map_err(|e| PipelineError::Gate(e.to_string()))?;
                        let run = fs.infer(&bin)?;
                        front_cycles += run.stats().cycles();
                        front_energy_nj += run.energy().total_nj();
                        let score = run.output_flat().first().copied().unwrap_or(Fx::MIN);
                        if score >= f.threshold {
                            compute = true;
                        } else {
                            front_rejected += 1;
                        }
                    }
                    (Some(_), None) => unreachable!("front gate always has a session"),
                }
            }

            if compute {
                let (run, dl) = session.infer_delta(&raw, &mut residency[ri])?;
                let load = run.stats().layers()[0].cycles;
                load_cycles += load;
                compute_cycles += run.stats().cycles() - load;
                energy_nj += run.energy().total_nj();
                rows_streamed += dl.rows_streamed;
                rows_total += dl.rows_total;
                let output = run.output_flat();
                if config.oracle {
                    bit_identical &= output == network.forward_fixed(&raw).output();
                }
                cache[ri] = Some(CachedRegion {
                    output: output.clone(),
                    computed_at: seq,
                });
                ledger.computed += 1;
                results.push(RegionResult { origin, output });
            } else if let Some(c) = &cache[ri] {
                // Clean (or front-rejected) region: replay the cached
                // result; its cost is the frame-level compare pass.
                if config.oracle {
                    let golden = network.forward_fixed(&raw).output();
                    if golden != c.output {
                        stale_results += 1;
                        let oracle_positive =
                            golden.iter().copied().fold(Fx::MIN, Fx::max) >= config.decision;
                        let emitted_positive =
                            c.output.iter().copied().fold(Fx::MIN, Fx::max) >= config.decision;
                        if oracle_positive && !emitted_positive {
                            missed_detections += 1;
                        }
                    }
                }
                ledger.skipped += 1;
                results.push(RegionResult {
                    origin,
                    output: c.output.clone(),
                });
            } else {
                unreachable!("uncached regions are always computed");
            }
        }

        // The differencing comparator consumes one NB bank width of
        // pixels per cycle and is priced as NB-style reads — the same
        // calibration `hot_path` pins.
        let bank = prepared.config().nb_bank_width_bytes() as u64;
        let compared = dirty_map.compared_pixels();
        let compare_cycles = compared.div_ceil(bank);
        let compare_energy_nj = {
            let mut ls = LayerStats::default();
            ls.nbin.read_accesses = compare_cycles;
            ls.nbin.read_bytes = compared;
            prepared.energy_model().charge(&ls).total_nj()
        };

        Ok(VideoFrameReport {
            frame_index: seq,
            results,
            ledger,
            compute_cycles,
            load_cycles,
            compare_cycles,
            front_cycles,
            energy_nj,
            compare_energy_nj,
            front_energy_nj,
            baseline_cycles,
            baseline_energy_nj,
            rows_streamed,
            rows_total,
            front_runs,
            front_rejected,
            stale_results,
            missed_detections,
            bit_identical,
            frequency_ghz,
        })
    }
}
