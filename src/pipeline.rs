//! The end-to-end streaming pipeline of §2/§10.2: sensor → partial-frame
//! buffer → region stream → accelerator → per-region recognition outputs.
//!
//! This ties the workspace together the way Fig. 1 deploys the chip: the
//! accelerator sits on the streaming path, frames never exist in full,
//! and only "the few output bytes of the recognition process" leave for
//! the host.

use crate::cnn::Network;
use crate::fixed::Fx;
use crate::sensor::{Frame, RegionGrid, RowBuffer, StreamError};
use crate::sim::{Accelerator, FaultPlan, FaultStats, PreparedNetwork, RunError};
use core::fmt;

/// Error constructing or running a [`StreamingPipeline`].
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The region size does not match the network's input dimensions.
    RegionShape {
        /// Region size the grid produces.
        region: (usize, usize),
        /// Input size the network expects.
        network: (usize, usize),
    },
    /// The accelerator rejected the network or a region.
    Run(RunError),
    /// The sensor stream rejected the frame.
    Stream(StreamError),
    /// A motion-gate stage could not be built or run.
    Gate(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::RegionShape { region, network } => write!(
                f,
                "grid regions are {}x{} but the network expects {}x{}",
                region.0, region.1, network.0, network.1
            ),
            PipelineError::Run(e) => e.fmt(f),
            PipelineError::Stream(e) => e.fmt(f),
            PipelineError::Gate(e) => write!(f, "motion gate: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RunError> for PipelineError {
    fn from(e: RunError) -> PipelineError {
        PipelineError::Run(e)
    }
}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> PipelineError {
        PipelineError::Stream(e)
    }
}

/// The shared region-outcome ledger: every frame report — plain,
/// degraded, or video — accounts for each grid region exactly once, so
/// the four counters always balance to the grid size. Hosts read one
/// vocabulary regardless of which pipeline produced the frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionLedger {
    /// Regions run through the accelerator this frame.
    pub computed: usize,
    /// Regions whose cached result was replayed (motion-gated skip).
    pub skipped: usize,
    /// Regions that completed only after fault retries.
    pub degraded: usize,
    /// Regions dropped (faulted out or over budget) with no output.
    pub dropped: usize,
}

impl RegionLedger {
    /// Total regions accounted for — the grid size when balanced.
    pub fn total(&self) -> usize {
        self.computed + self.skipped + self.degraded + self.dropped
    }

    /// Regions that produced an output (everything but dropped).
    pub fn covered(&self) -> usize {
        self.computed + self.skipped + self.degraded
    }

    /// Fraction of regions that produced an output (1.0 when empty).
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        self.covered() as f64 / self.total() as f64
    }
}

/// One region's recognition result.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionResult {
    /// Region origin within the frame.
    pub origin: (usize, usize),
    /// The network's output neurons for this region.
    pub output: Vec<Fx>,
}

/// Timing and energy of one processed frame.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameReport {
    results: Vec<RegionResult>,
    compute_cycles: u64,
    load_cycles: u64,
    energy_nj: f64,
    frequency_ghz: f64,
}

impl FrameReport {
    /// Per-region outputs, in the grid's row-major order.
    pub fn results(&self) -> &[RegionResult] {
        &self.results
    }

    /// Regions whose first output neuron exceeds `threshold` — the
    /// detection set a host would receive.
    pub fn detections(&self, threshold: Fx) -> Vec<&RegionResult> {
        self.results
            .iter()
            .filter(|r| r.output.first().is_some_and(|&v| v > threshold))
            .collect()
    }

    /// Accelerator cycles spent computing (NBin loads excluded).
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// Cycles spent streaming regions into NBin.
    pub fn load_cycles(&self) -> u64 {
        self.load_cycles
    }

    /// Frame latency in seconds when region loads overlap the previous
    /// region's compute (the deployment of Fig. 1: the sensor streams at
    /// a matched rate, §10.2) — compute plus one pipeline-fill load.
    pub fn seconds_overlapped(&self) -> f64 {
        let fill = self.load_cycles / (self.results.len().max(1) as u64);
        (self.compute_cycles + fill) as f64 / (self.frequency_ghz * 1e9)
    }

    /// Frame latency with serial loads (no overlap) — the pessimistic
    /// bound.
    pub fn seconds_serial(&self) -> f64 {
        (self.compute_cycles + self.load_cycles) as f64 / (self.frequency_ghz * 1e9)
    }

    /// Sustained frames per second under overlapped streaming.
    pub fn fps(&self) -> f64 {
        1.0 / self.seconds_overlapped()
    }

    /// Energy for the whole frame in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// The region-outcome ledger: every region of a plain frame is
    /// computed, so the ledger is all-`computed`.
    pub fn ledger(&self) -> RegionLedger {
        RegionLedger {
            computed: self.results.len(),
            ..RegionLedger::default()
        }
    }
}

/// A deployed recognition pipeline: a network on an accelerator, fed by a
/// region grid.
///
/// # Examples
///
/// ```
/// use shidiannao::pipeline::StreamingPipeline;
/// use shidiannao::prelude::*;
/// use shidiannao::sensor::{RegionGrid, SyntheticSensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?; // 20×20 input
/// let grid = RegionGrid::new((40, 40), (20, 20), (20, 20));
/// let pipe = StreamingPipeline::new(
///     Accelerator::new(AcceleratorConfig::paper()),
///     net,
///     grid,
/// )?;
/// let mut cam = SyntheticSensor::new(40, 40, 7);
/// let report = pipe.process_frame(&cam.next_frame())?;
/// assert_eq!(report.results().len(), 4);
/// assert!(report.fps() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StreamingPipeline {
    prepared: PreparedNetwork,
    grid: RegionGrid,
}

impl StreamingPipeline {
    /// Assembles a pipeline, validating that grid regions match the
    /// network input and that the network fits the accelerator. The
    /// network is prepared once here — compiled and its synapse store
    /// banked — so per-region execution does no redundant work.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] on a region/network shape mismatch or if
    /// the network exceeds the on-chip buffers.
    pub fn new(
        accel: Accelerator,
        network: Network,
        grid: RegionGrid,
    ) -> Result<StreamingPipeline, PipelineError> {
        if grid.region_dims() != network.input_dims() {
            return Err(PipelineError::RegionShape {
                region: grid.region_dims(),
                network: network.input_dims(),
            });
        }
        let prepared = accel.prepare(&network)?;
        Ok(StreamingPipeline { prepared, grid })
    }

    /// The grid driving the pipeline.
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// The prepared network backing the pipeline (compiled schedule,
    /// banked synapse store, optimizer report).
    pub fn prepared(&self) -> &PreparedNetwork {
        &self.prepared
    }

    /// The network being served.
    pub fn network(&self) -> &Network {
        self.prepared.network()
    }

    /// The §10.2 partial-frame buffer this pipeline needs.
    pub fn row_buffer(&self) -> RowBuffer {
        RowBuffer::for_grid(&self.grid, 2)
    }

    /// Runs every region of a frame through the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stream`] if the frame's dimensions do not
    /// match the grid, and [`PipelineError::Run`] if a region run fails
    /// (cannot happen after a successful [`StreamingPipeline::new`]).
    pub fn process_frame(&self, frame: &Frame) -> Result<FrameReport, PipelineError> {
        let mut results = Vec::with_capacity(self.grid.count());
        let mut compute_cycles = 0;
        let mut load_cycles = 0;
        let mut energy_nj = 0.0;
        let maps = self.network().input_maps();
        let origins: Vec<_> = self.grid.origins().collect();
        // One session serves the whole frame: buffers and the PE mesh
        // stay allocated, and no region recompiles or rebuilds anything.
        let mut session = self.prepared.session();
        for (origin, region) in origins.into_iter().zip(self.grid.try_stream(frame, maps)?) {
            let run = session.infer(&region)?;
            let load = run.stats().layers()[0].cycles;
            load_cycles += load;
            compute_cycles += run.stats().cycles() - load;
            energy_nj += run.energy().total_nj();
            results.push(RegionResult {
                origin,
                output: run.output_flat(),
            });
        }
        Ok(FrameReport {
            results,
            compute_cycles,
            load_cycles,
            energy_nj,
            frequency_ghz: self.prepared.config().frequency_ghz,
        })
    }

    /// Runs a frame under a fault plan with graceful degradation instead
    /// of frame abort.
    ///
    /// Each region runs in a fault-injecting session salted by
    /// `(frame, region, attempt)`, so every attempt sees an independent —
    /// but fully replayable — fault pattern. When SRAM protection detects
    /// an uncorrectable error the region is **retried** up to
    /// `policy.max_retries` times (a real controller would re-fetch the
    /// region from the row buffer), then **dropped**; the cycles burned by
    /// failed attempts are still charged. A per-frame cycle budget acts as
    /// the watchdog: once spent, remaining regions are dropped without
    /// running. The frame always completes with per-region outcomes
    /// rather than propagating [`RunError::FaultDetected`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stream`] on a frame/grid mismatch and
    /// [`PipelineError::Run`] only for non-fault failures.
    pub fn process_frame_degraded(
        &self,
        frame: &Frame,
        plan: FaultPlan,
        policy: &DegradePolicy,
    ) -> Result<DegradedFrameReport, PipelineError> {
        let maps = self.network().input_maps();
        let origins: Vec<_> = self.grid.origins().collect();
        let mut results = Vec::with_capacity(origins.len());
        let mut cycles = 0u64;
        let mut energy_nj = 0.0;
        let mut fault_stats = FaultStats::default();
        let mut session = self.prepared.session_with_faults(plan);
        for ((ri, origin), region) in origins
            .into_iter()
            .enumerate()
            .zip(self.grid.try_stream(frame, maps)?)
        {
            if policy
                .frame_cycle_budget
                .is_some_and(|budget| cycles >= budget)
            {
                results.push(DegradedRegionResult {
                    origin,
                    outcome: RegionOutcome::DroppedBudget,
                    output: None,
                });
                continue;
            }
            let mut outcome = RegionOutcome::DroppedFaulty;
            let mut output = None;
            for attempt in 0..=policy.max_retries {
                let salt = (frame.index() << 32) ^ ((ri as u64) << 8) ^ attempt as u64;
                session.set_fault_plan(plan.with_salt(salt));
                match session.infer(&region) {
                    Ok(run) => {
                        cycles += run.stats().cycles();
                        energy_nj += run.energy().total_nj();
                        fault_stats.absorb(run.fault_stats());
                        output = Some(run.output_flat());
                        outcome = if attempt == 0 {
                            RegionOutcome::Ok
                        } else {
                            RegionOutcome::Degraded { retries: attempt }
                        };
                        break;
                    }
                    Err(RunError::FaultDetected(_)) => {
                        // The aborted attempt's cycles are real time the
                        // watchdog saw pass; charge them before retrying.
                        cycles += session.last_cycles();
                        fault_stats.absorb(session.fault_stats());
                    }
                    Err(e) => return Err(PipelineError::Run(e)),
                }
            }
            results.push(DegradedRegionResult {
                origin,
                outcome,
                output,
            });
        }
        Ok(DegradedFrameReport {
            results,
            cycles,
            energy_nj,
            frequency_ghz: self.prepared.config().frequency_ghz,
            fault_stats,
        })
    }
}

/// How [`StreamingPipeline::process_frame_degraded`] responds to detected
/// faults and deadline pressure. The policy type lives in
/// `shidiannao-faults` so the multi-tenant serve scheduler can share it;
/// it is re-exported here under its historical path.
pub use crate::faults::DegradePolicy;

/// What happened to one region under graceful degradation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionOutcome {
    /// Completed on the first attempt.
    Ok,
    /// Completed after `retries` additional attempts.
    Degraded {
        /// Retry count that led to success.
        retries: u32,
    },
    /// Every attempt hit a detected fault; the region was skipped.
    DroppedFaulty,
    /// The frame's cycle budget ran out before this region started.
    DroppedBudget,
}

/// One region's result under graceful degradation.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedRegionResult {
    /// Region origin within the frame.
    pub origin: (usize, usize),
    /// How the region completed (or didn't).
    pub outcome: RegionOutcome,
    /// The network outputs, present unless the region was dropped.
    pub output: Option<Vec<Fx>>,
}

/// A whole frame's outcome under graceful degradation.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedFrameReport {
    results: Vec<DegradedRegionResult>,
    cycles: u64,
    energy_nj: f64,
    frequency_ghz: f64,
    fault_stats: FaultStats,
}

impl DegradedFrameReport {
    /// Per-region outcomes, in the grid's row-major order.
    pub fn results(&self) -> &[DegradedRegionResult] {
        &self.results
    }

    /// Regions that completed on the first attempt.
    pub fn ok_regions(&self) -> usize {
        self.count(|o| o == RegionOutcome::Ok)
    }

    /// Regions that completed only after retries.
    pub fn degraded_regions(&self) -> usize {
        self.count(|o| matches!(o, RegionOutcome::Degraded { .. }))
    }

    /// Regions dropped (faulted out or over budget).
    pub fn dropped_regions(&self) -> usize {
        self.count(|o| {
            matches!(
                o,
                RegionOutcome::DroppedFaulty | RegionOutcome::DroppedBudget
            )
        })
    }

    /// Fraction of regions that produced an output.
    pub fn coverage(&self) -> f64 {
        self.ledger().coverage()
    }

    /// The region-outcome ledger shared with [`FrameReport::ledger`] and
    /// the video pipeline: `computed`/`degraded`/`dropped` balance to the
    /// grid size (a degraded frame never skips).
    pub fn ledger(&self) -> RegionLedger {
        RegionLedger {
            computed: self.ok_regions(),
            skipped: 0,
            degraded: self.degraded_regions(),
            dropped: self.dropped_regions(),
        }
    }

    /// Total cycles spent, including failed attempts.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Frame latency in seconds (retries included).
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.frequency_ghz * 1e9)
    }

    /// Energy of the successful runs in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// Aggregated fault-injection statistics across all attempts.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    fn count(&self, pred: impl Fn(RegionOutcome) -> bool) -> usize {
        self.results.iter().filter(|r| pred(r.outcome)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::sensor::SyntheticSensor;

    fn small_pipeline() -> (StreamingPipeline, SyntheticSensor) {
        let net = zoo::gabor().build(1).unwrap();
        let grid = RegionGrid::new((36, 28), (20, 20), (16, 8));
        let pipe = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid)
            .unwrap();
        (pipe, SyntheticSensor::new(36, 28, 3))
    }

    #[test]
    fn processes_every_region() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert_eq!(report.results().len(), pipe.grid().count());
        assert!(report.compute_cycles() > 0);
        assert!(report.load_cycles() > 0);
        assert!(report.energy_nj() > 0.0);
    }

    #[test]
    fn overlapped_streaming_is_faster_than_serial() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert!(report.seconds_overlapped() < report.seconds_serial());
        assert!(report.fps() > 1.0 / report.seconds_serial());
    }

    #[test]
    fn detections_threshold_filters() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        let all = report.detections(Fx::MIN).len();
        let none = report.detections(Fx::MAX).len();
        assert_eq!(all, report.results().len());
        assert_eq!(none, 0);
    }

    #[test]
    fn shape_mismatch_is_rejected_at_construction() {
        let net = zoo::gabor().build(1).unwrap(); // expects 20×20
        let grid = RegionGrid::new((64, 64), (32, 32), (16, 16));
        let err = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid)
            .unwrap_err();
        assert!(err.to_string().contains("expects 20x20"), "{err}");
    }

    #[test]
    fn mismatched_frame_is_a_typed_stream_error() {
        let (pipe, _) = small_pipeline();
        let mut wrong = SyntheticSensor::new(64, 64, 3);
        let err = pipe.process_frame(&wrong.next_frame()).unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err:?}");
    }

    #[test]
    fn degraded_run_with_zero_plan_matches_plain_run() {
        let (pipe, mut cam) = small_pipeline();
        let frame = cam.next_frame();
        let plain = pipe.process_frame(&frame).unwrap();
        let degraded = pipe
            .process_frame_degraded(&frame, FaultPlan::none(), &DegradePolicy::default())
            .unwrap();
        assert_eq!(degraded.ok_regions(), pipe.grid().count());
        assert_eq!(degraded.degraded_regions(), 0);
        assert_eq!(degraded.dropped_regions(), 0);
        assert_eq!(degraded.coverage(), 1.0);
        assert_eq!(degraded.fault_stats().total_faults(), 0);
        for (d, p) in degraded.results().iter().zip(plain.results()) {
            assert_eq!(d.origin, p.origin);
            assert_eq!(d.output.as_deref(), Some(p.output.as_slice()));
        }
    }

    #[test]
    fn detected_faults_degrade_or_drop_but_never_abort_the_frame() {
        use crate::sim::{FaultConfig, SramProtection};
        let (pipe, mut cam) = small_pipeline();
        let frame = cam.next_frame();
        // Parity at a high flip rate: detections are certain, so the
        // degradation path (retry, then drop) must carry the frame.
        let plan = FaultPlan::new(FaultConfig::uniform(11, 1e-3, SramProtection::Parity));
        let policy = DegradePolicy {
            max_retries: 1,
            frame_cycle_budget: None,
        };
        let report = pipe.process_frame_degraded(&frame, plan, &policy).unwrap();
        assert_eq!(report.results().len(), pipe.grid().count());
        assert!(report.fault_stats().detected > 0);
        assert!(report.dropped_regions() + report.degraded_regions() > 0);
        assert!(report.cycles() > 0);
        // Replayable: same plan, same frame, same outcome.
        let again = pipe.process_frame_degraded(&frame, plan, &policy).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn cycle_budget_watchdog_drops_remaining_regions() {
        let (pipe, mut cam) = small_pipeline();
        let frame = cam.next_frame();
        let unlimited = pipe
            .process_frame_degraded(&frame, FaultPlan::none(), &DegradePolicy::default())
            .unwrap();
        let per_region = unlimited.cycles() / pipe.grid().count() as u64;
        // Budget for roughly one region: the rest must be dropped unrun.
        let policy = DegradePolicy {
            max_retries: 0,
            frame_cycle_budget: Some(per_region + 1),
        };
        let report = pipe
            .process_frame_degraded(&frame, FaultPlan::none(), &policy)
            .unwrap();
        assert!(report.ok_regions() >= 1);
        assert!(report.dropped_regions() >= 1);
        assert_eq!(
            report.ok_regions() + report.dropped_regions(),
            pipe.grid().count()
        );
        assert!(report.coverage() < 1.0);
        // Budget zero drops everything before any work.
        let none = pipe
            .process_frame_degraded(
                &frame,
                FaultPlan::none(),
                &DegradePolicy {
                    max_retries: 0,
                    frame_cycle_budget: Some(0),
                },
            )
            .unwrap();
        assert_eq!(none.dropped_regions(), pipe.grid().count());
        assert_eq!(none.cycles(), 0);
    }

    #[test]
    fn region_results_carry_origins() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert_eq!(report.results()[0].origin, (0, 0));
        let origins: Vec<_> = pipe.grid().origins().collect();
        for (r, o) in report.results().iter().zip(origins) {
            assert_eq!(r.origin, o);
        }
    }
}
