//! The end-to-end streaming pipeline of §2/§10.2: sensor → partial-frame
//! buffer → region stream → accelerator → per-region recognition outputs.
//!
//! This ties the workspace together the way Fig. 1 deploys the chip: the
//! accelerator sits on the streaming path, frames never exist in full,
//! and only "the few output bytes of the recognition process" leave for
//! the host.

use crate::cnn::Network;
use crate::fixed::Fx;
use crate::sensor::{Frame, RegionGrid, RowBuffer};
use crate::sim::{Accelerator, PreparedNetwork, RunError};
use core::fmt;

/// Error constructing or running a [`StreamingPipeline`].
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The region size does not match the network's input dimensions.
    RegionShape {
        /// Region size the grid produces.
        region: (usize, usize),
        /// Input size the network expects.
        network: (usize, usize),
    },
    /// The accelerator rejected the network or a region.
    Run(RunError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::RegionShape { region, network } => write!(
                f,
                "grid regions are {}x{} but the network expects {}x{}",
                region.0, region.1, network.0, network.1
            ),
            PipelineError::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RunError> for PipelineError {
    fn from(e: RunError) -> PipelineError {
        PipelineError::Run(e)
    }
}

/// One region's recognition result.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionResult {
    /// Region origin within the frame.
    pub origin: (usize, usize),
    /// The network's output neurons for this region.
    pub output: Vec<Fx>,
}

/// Timing and energy of one processed frame.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameReport {
    results: Vec<RegionResult>,
    compute_cycles: u64,
    load_cycles: u64,
    energy_nj: f64,
    frequency_ghz: f64,
}

impl FrameReport {
    /// Per-region outputs, in the grid's row-major order.
    pub fn results(&self) -> &[RegionResult] {
        &self.results
    }

    /// Regions whose first output neuron exceeds `threshold` — the
    /// detection set a host would receive.
    pub fn detections(&self, threshold: Fx) -> Vec<&RegionResult> {
        self.results
            .iter()
            .filter(|r| r.output.first().is_some_and(|&v| v > threshold))
            .collect()
    }

    /// Accelerator cycles spent computing (NBin loads excluded).
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// Cycles spent streaming regions into NBin.
    pub fn load_cycles(&self) -> u64 {
        self.load_cycles
    }

    /// Frame latency in seconds when region loads overlap the previous
    /// region's compute (the deployment of Fig. 1: the sensor streams at
    /// a matched rate, §10.2) — compute plus one pipeline-fill load.
    pub fn seconds_overlapped(&self) -> f64 {
        let fill = self.load_cycles / (self.results.len().max(1) as u64);
        (self.compute_cycles + fill) as f64 / (self.frequency_ghz * 1e9)
    }

    /// Frame latency with serial loads (no overlap) — the pessimistic
    /// bound.
    pub fn seconds_serial(&self) -> f64 {
        (self.compute_cycles + self.load_cycles) as f64 / (self.frequency_ghz * 1e9)
    }

    /// Sustained frames per second under overlapped streaming.
    pub fn fps(&self) -> f64 {
        1.0 / self.seconds_overlapped()
    }

    /// Energy for the whole frame in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }
}

/// A deployed recognition pipeline: a network on an accelerator, fed by a
/// region grid.
///
/// # Examples
///
/// ```
/// use shidiannao::pipeline::StreamingPipeline;
/// use shidiannao::prelude::*;
/// use shidiannao::sensor::{RegionGrid, SyntheticSensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::gabor().build(1)?; // 20×20 input
/// let grid = RegionGrid::new((40, 40), (20, 20), (20, 20));
/// let pipe = StreamingPipeline::new(
///     Accelerator::new(AcceleratorConfig::paper()),
///     net,
///     grid,
/// )?;
/// let mut cam = SyntheticSensor::new(40, 40, 7);
/// let report = pipe.process_frame(&cam.next_frame())?;
/// assert_eq!(report.results().len(), 4);
/// assert!(report.fps() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StreamingPipeline {
    prepared: PreparedNetwork,
    grid: RegionGrid,
}

impl StreamingPipeline {
    /// Assembles a pipeline, validating that grid regions match the
    /// network input and that the network fits the accelerator. The
    /// network is prepared once here — compiled and its synapse store
    /// banked — so per-region execution does no redundant work.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] on a region/network shape mismatch or if
    /// the network exceeds the on-chip buffers.
    pub fn new(
        accel: Accelerator,
        network: Network,
        grid: RegionGrid,
    ) -> Result<StreamingPipeline, PipelineError> {
        if grid.region_dims() != network.input_dims() {
            return Err(PipelineError::RegionShape {
                region: grid.region_dims(),
                network: network.input_dims(),
            });
        }
        let prepared = accel.prepare(&network)?;
        Ok(StreamingPipeline { prepared, grid })
    }

    /// The grid driving the pipeline.
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// The network being served.
    pub fn network(&self) -> &Network {
        self.prepared.network()
    }

    /// The §10.2 partial-frame buffer this pipeline needs.
    pub fn row_buffer(&self) -> RowBuffer {
        RowBuffer::for_grid(&self.grid, 2)
    }

    /// Runs every region of a frame through the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Run`] if a region run fails (cannot
    /// happen after a successful [`StreamingPipeline::new`] unless the
    /// frame mismatches the grid).
    ///
    /// # Panics
    ///
    /// Panics if the frame's dimensions do not match the grid.
    pub fn process_frame(&self, frame: &Frame) -> Result<FrameReport, PipelineError> {
        let mut results = Vec::with_capacity(self.grid.count());
        let mut compute_cycles = 0;
        let mut load_cycles = 0;
        let mut energy_nj = 0.0;
        let maps = self.network().input_maps();
        let origins: Vec<_> = self.grid.origins().collect();
        // One session serves the whole frame: buffers and the PE mesh
        // stay allocated, and no region recompiles or rebuilds anything.
        let mut session = self.prepared.session();
        for (origin, region) in origins.into_iter().zip(self.grid.stream(frame, maps)) {
            let run = session.infer(&region)?;
            let load = run.stats().layers()[0].cycles;
            load_cycles += load;
            compute_cycles += run.stats().cycles() - load;
            energy_nj += run.energy().total_nj();
            results.push(RegionResult {
                origin,
                output: run.output_flat(),
            });
        }
        Ok(FrameReport {
            results,
            compute_cycles,
            load_cycles,
            energy_nj,
            frequency_ghz: self.prepared.config().frequency_ghz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::sensor::SyntheticSensor;

    fn small_pipeline() -> (StreamingPipeline, SyntheticSensor) {
        let net = zoo::gabor().build(1).unwrap();
        let grid = RegionGrid::new((36, 28), (20, 20), (16, 8));
        let pipe = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid)
            .unwrap();
        (pipe, SyntheticSensor::new(36, 28, 3))
    }

    #[test]
    fn processes_every_region() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert_eq!(report.results().len(), pipe.grid().count());
        assert!(report.compute_cycles() > 0);
        assert!(report.load_cycles() > 0);
        assert!(report.energy_nj() > 0.0);
    }

    #[test]
    fn overlapped_streaming_is_faster_than_serial() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert!(report.seconds_overlapped() < report.seconds_serial());
        assert!(report.fps() > 1.0 / report.seconds_serial());
    }

    #[test]
    fn detections_threshold_filters() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        let all = report.detections(Fx::MIN).len();
        let none = report.detections(Fx::MAX).len();
        assert_eq!(all, report.results().len());
        assert_eq!(none, 0);
    }

    #[test]
    fn shape_mismatch_is_rejected_at_construction() {
        let net = zoo::gabor().build(1).unwrap(); // expects 20×20
        let grid = RegionGrid::new((64, 64), (32, 32), (16, 16));
        let err = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid)
            .unwrap_err();
        assert!(err.to_string().contains("expects 20x20"), "{err}");
    }

    #[test]
    fn region_results_carry_origins() {
        let (pipe, mut cam) = small_pipeline();
        let report = pipe.process_frame(&cam.next_frame()).unwrap();
        assert_eq!(report.results()[0].origin, (0, 0));
        let origins: Vec<_> = pipe.grid().origins().collect();
        for (r, o) in report.results().iter().zip(origins) {
            assert_eq!(r.origin, o);
        }
    }
}
