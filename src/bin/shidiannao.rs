//! Command-line front-end: run any Table 2 benchmark (or all of them) on
//! a configurable accelerator and print the performance, traffic, and
//! energy report.
//!
//! ```text
//! shidiannao [OPTIONS] [NETWORK]
//!
//! NETWORK              benchmark name (default: all ten)
//!   --pe <N>           square PE mesh side (default 8)
//!   --seed <N>         weight/input seed (default 2015)
//!   --no-propagation   disable inter-PE data propagation (Fig. 7 ablation)
//!   --multimap         enable multi-map packing (the rejected §10.2 idea)
//!   --layers           print the per-layer breakdown
//!   --csv <PATH>       dump per-layer statistics as CSV
//! ```

use shidiannao::prelude::*;
use std::process::ExitCode;

struct Options {
    network: Option<String>,
    pe: usize,
    seed: u64,
    propagation: bool,
    multimap: bool,
    layers: bool,
    csv: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        network: None,
        pe: 8,
        seed: 2015,
        propagation: true,
        multimap: false,
        layers: false,
        csv: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pe" => {
                let v = args.next().ok_or("--pe needs a value")?;
                opts.pe = v.parse().map_err(|e| format!("--pe: {e}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--csv" => {
                opts.csv = Some(args.next().ok_or("--csv needs a path")?);
            }
            "--no-propagation" => opts.propagation = false,
            "--multimap" => opts.multimap = true,
            "--layers" => opts.layers = true,
            "--help" | "-h" => {
                return Err("usage: shidiannao [--pe N] [--seed N] [--no-propagation] \
                            [--multimap] [--layers] [--csv PATH] [NETWORK]"
                    .into())
            }
            name if !name.starts_with('-') => opts.network = Some(name.to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(opts)
}

fn run_one(name_or_builder: NetworkBuilder, opts: &Options) -> Result<(), String> {
    let network = name_or_builder
        .build(opts.seed)
        .map_err(|e| e.to_string())?;
    let mut cfg = AcceleratorConfig::with_pe_grid(opts.pe, opts.pe);
    cfg.inter_pe_propagation = opts.propagation;
    cfg.multi_map_packing = opts.multimap;
    let accel = Accelerator::new(cfg);
    let input = network.random_input(opts.seed ^ 0xABCD);
    let run = accel.run(&network, &input).map_err(|e| e.to_string())?;
    assert_eq!(
        run.output(),
        network.forward_fixed(&input).output(),
        "simulator diverged from the golden reference"
    );
    let total = run.stats().total();
    println!(
        "{:<11} {:>9} cycles  {:>7.1} us  {:>6.1}% util  {:>10.1} nJ  {:>7.1} mW",
        network.name(),
        run.stats().cycles(),
        run.seconds() * 1e6,
        100.0 * total.pe_utilization(),
        run.energy().total_nj(),
        run.average_power_mw()
    );
    if let Some(path) = &opts.csv {
        let csv = shidiannao::sim::trace::stats_to_csv(run.stats());
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("    per-layer statistics written to {path}");
    }
    if opts.layers {
        for layer in run.stats().layers() {
            println!(
                "    {:<5} {:>9} cycles  {:>6.1}% util  NBin {:>8} B  SB {:>8} B  FIFO {:>8}",
                layer.label,
                layer.cycles,
                100.0 * layer.pe_utilization(),
                layer.nbin.read_bytes,
                layer.sb.read_bytes,
                layer.fifo_pops
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &opts.network {
        Some(name) => match zoo::by_name(name) {
            Some(b) => run_one(b, &opts),
            None => Err(format!(
                "unknown network '{name}'; available: {}",
                zoo::all()
                    .iter()
                    .map(|b| b.name().to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        },
        None => zoo::all().into_iter().try_for_each(|b| run_one(b, &opts)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
