//! # ShiDianNao reproduction
//!
//! A from-scratch Rust reproduction of *ShiDianNao: Shifting Vision
//! Processing Closer to the Sensor* (Du et al., ISCA 2015): a cycle-level
//! simulator of the accelerator, golden-model CNN substrate, the paper's
//! baselines (DianNao, CPU, GPU), a sensor streaming front-end, and a
//! benchmark harness regenerating every table and figure of the evaluation.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`fixed`] — 16-bit fixed-point arithmetic and the ALU's
//!   piecewise-linear activation tables (§5),
//! * [`tensor`] — feature maps and sliding-window geometry (§3),
//! * [`cnn`] — layer descriptors, network builder, golden reference
//!   executor, and the ten benchmark networks of Table 2,
//! * [`sim`] — the ShiDianNao accelerator simulator itself (§§5–8),
//! * [`baseline`] — the DianNao / CPU / GPU comparison models (§9),
//! * [`sensor`] — the CMOS-sensor streaming front-end (§2, §10.2),
//! * [`serve`] — the multi-tenant inference service: session pooling,
//!   deadline- and fairness-aware scheduling, bounded admission queues,
//!   a deterministic load generator, and the fault-tolerant sharded
//!   cluster (rendezvous routing, heartbeat health checks,
//!   drain/failover with retry budgets, seeded chaos episodes).
//!
//! # Quickstart
//!
//! ```
//! use shidiannao::prelude::*;
//!
//! // Build LeNet-5 with deterministic weights, quantize, and run one
//! // inference on the simulated accelerator.
//! let network = zoo::lenet5().build(42).expect("valid topology");
//! let accel = Accelerator::new(AcceleratorConfig::paper());
//! let input = network.random_input(7);
//! let run = accel.run(&network, &input).expect("network fits on chip");
//!
//! // The simulator's output is bit-identical to the fixed-point golden
//! // reference.
//! let golden = network.forward_fixed(&input);
//! assert_eq!(run.output(), golden.output());
//! assert!(run.stats().cycles() > 0);
//! ```

pub mod pipeline;
pub mod video;

pub use shidiannao_baseline as baseline;
pub use shidiannao_cnn as cnn;
pub use shidiannao_core as sim;
pub use shidiannao_faults as faults;
pub use shidiannao_fixed as fixed;
pub use shidiannao_quant as quant;
pub use shidiannao_sensor as sensor;
pub use shidiannao_serve as serve;
pub use shidiannao_tensor as tensor;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use crate::baseline::{CpuModel, DianNao, DianNaoConfig, GpuModel};
    pub use crate::cnn::{zoo, Layer, Network, NetworkBuilder};
    pub use crate::fixed::{Accum, Fx, Pla};
    pub use crate::pipeline::{DegradePolicy, RegionLedger, StreamingPipeline};
    pub use crate::quant::{CascadeConfig, QuantizedNetwork, WeightPrecision};
    pub use crate::sensor::{FrameSource, RegionStream};
    pub use crate::serve::{
        Cluster, ClusterConfig, InferenceService, ServeConfig, ShardFaultConfig, ShardSpec,
        TenantSpec, Traffic,
    };
    pub use crate::sim::{
        Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, PreparedNetwork, Session,
        SramProtection,
    };
    pub use crate::tensor::{FeatureMap, MapStack, WindowGrid};
    pub use crate::video::{MotionGate, VideoConfig, VideoPipeline};
}
